//! Fat-binary differential suite.
//!
//! The fat artifact's contract: dispatching on any mined target must behave
//! exactly like that target's own tuned winner — bit-identical application
//! outputs (the variant is a semantics-preserving respecialization of the
//! same kernel) and simulated time within the configured ε of the tuned
//! optimum. Never-seen targets must resolve through the nearest-neighbor
//! feature fallback, and a cold or corrupt winner store must degrade to a
//! structured [`respec::Error::Fatbin`], not a panic.
//!
//! Worker count comes from the environment (`RESPEC_TUNE_PARALLELISM`), so
//! the CI matrix exercises this suite at parallelism 1 and 4.

use std::sync::Arc;

use respec::sim::TargetModel;
use respec::{targets, Error, GpuSim, Strategy, TuneOptions, TuningCache};
use respec_bench::{
    compiled_module, fatbin_for_app, fatbin_targets, filtered_kernel_seconds, tuned_module_with,
    Pipeline,
};
use respec_rodinia::{all_apps_with_gemm, App, Workload};

const EPSILON: f64 = 0.05;
const TOTALS: [i64; 2] = [1, 2];

fn temp_cache_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "respec-fatbin-diff-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn env_options() -> TuneOptions {
    TuneOptions::from_env().expect("invalid RESPEC_* environment")
}

/// Runs `app` with `func` installed as the main-kernel version on `target`,
/// returning the output vector and the filtered main-kernel seconds.
fn run_with_version(
    app: &dyn App,
    func: &respec::Function,
    target: &dyn TargetModel,
) -> (Vec<f64>, f64) {
    let mut module = compiled_module(app, Pipeline::PolygeistNoOpt);
    module.add_function(func.clone());
    let mut sim = GpuSim::for_model(target);
    let out = app
        .run(&mut sim, &module)
        .unwrap_or_else(|e| panic!("{} fails under dispatched variant: {e:?}", app.name()));
    let seconds = filtered_kernel_seconds(&sim, app.main_kernel());
    (out, seconds)
}

#[test]
fn fat_dispatch_matches_every_targets_own_tuned_winner() {
    let options = env_options();
    let fat_targets = fatbin_targets();
    let dir = temp_cache_dir("differential");
    let cache = Arc::new(TuningCache::open(&dir).expect("cache opens"));
    for app in all_apps_with_gemm(Workload::Small) {
        let fat = fatbin_for_app(
            app.as_ref(),
            &fat_targets,
            &TOTALS,
            &cache,
            EPSILON,
            &options,
        )
        .unwrap_or_else(|e| panic!("{}: fat binary fails to mine: {e}", app.name()));
        assert_eq!(fat.targets.len(), fat_targets.len());
        assert!(
            fat.variant_count() <= fat_targets.len(),
            "{}: more variants than targets",
            app.name()
        );
        for target in &fat_targets {
            let ctx = format!("{} on {}", app.name(), target.name());
            // The target's own tuned winner, replayed from the same store
            // the miner read (warm: zero new measurements).
            let (tuned_module, tuned) = tuned_module_with(
                app.as_ref(),
                target.as_ref(),
                Strategy::Combined,
                &TOTALS,
                &options.clone().cache(cache.clone()),
            );
            let tuned = tuned.unwrap_or_else(|| panic!("no tuned winner: {ctx}"));
            let mut sim = GpuSim::for_model(target.as_ref());
            let tuned_out = app
                .run(&mut sim, &tuned_module)
                .unwrap_or_else(|e| panic!("tuned run fails: {ctx}: {e:?}"));
            let tuned_seconds = filtered_kernel_seconds(&sim, app.main_kernel());

            let d = fat
                .dispatch(target.as_ref())
                .unwrap_or_else(|e| panic!("dispatch fails: {ctx}: {e}"));
            assert!(d.exact, "mined target must hit by fingerprint: {ctx}");
            let (fat_out, fat_seconds) = run_with_version(app.as_ref(), d.func, target.as_ref());

            assert_eq!(
                tuned_out.len(),
                fat_out.len(),
                "output length diverged: {ctx}"
            );
            for (i, (t, f)) in tuned_out.iter().zip(&fat_out).enumerate() {
                assert_eq!(
                    t.to_bits(),
                    f.to_bits(),
                    "output[{i}] diverged: {ctx} (tuned {t}, fat {f}, variant {})",
                    d.config
                );
            }
            // The dispatched variant's measured time honors the ε budget
            // against the target's own optimum (bit-exact simulator, so no
            // measurement-noise cushion is needed beyond float rounding).
            assert!(
                fat_seconds <= tuned_seconds * (1.0 + EPSILON) * (1.0 + 1e-12),
                "{ctx}: fat variant {} takes {fat_seconds} vs tuned {tuned_seconds} \
                 (budget {EPSILON})",
                d.config
            );
            // The dispatch table recorded exactly what re-measurement sees.
            assert_eq!(
                d.via.dispatch_seconds.to_bits(),
                fat_seconds.to_bits(),
                "recorded dispatch time diverged from re-measurement: {ctx}"
            );
            assert_eq!(
                tuned.best_seconds.to_bits(),
                tuned_seconds.to_bits(),
                "tuned winner re-measurement diverged: {ctx}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn never_seen_target_resolves_by_nearest_neighbor_features() {
    let options = env_options();
    let fat_targets = fatbin_targets();
    let dir = temp_cache_dir("fallback");
    let cache = Arc::new(TuningCache::open(&dir).expect("cache opens"));
    let apps = all_apps_with_gemm(Workload::Small);
    let app = apps
        .iter()
        .find(|a| a.name() == "pathfinder")
        .expect("registered");
    let fat = fatbin_for_app(
        app.as_ref(),
        &fat_targets,
        &TOTALS,
        &cache,
        EPSILON,
        &options,
    )
    .expect("fat binary mines");

    // A 7th GPU nobody tuned: a perturbed A4000 (fewer SMs, different
    // clock), absent from the registry and from the dispatch table.
    let mut synth = targets::a4000();
    synth.name = "NVIDIA A4000 (cut-down OEM)";
    synth.sm_count = 40;
    synth.clock_hz = 1.41e9;
    assert!(
        fat.targets
            .iter()
            .all(|t| t.fingerprint != synth.fingerprint()),
        "perturbed desc must not collide with a mined fingerprint"
    );
    let d = fat
        .dispatch(&synth)
        .expect("synthetic GPU resolves via nearest neighbor");
    assert!(!d.exact, "a never-seen fingerprint cannot be an exact hit");
    assert_eq!(d.via.kind, respec::sim::TargetKind::Gpu);
    // The dispatched code must actually run the app on the synthetic
    // target, and its slowdown vs a from-scratch tune is finite and
    // reportable.
    let (_, fat_seconds) = run_with_version(app.as_ref(), d.func, &synth);
    let (_, scratch) = tuned_module_with(
        app.as_ref(),
        &synth,
        Strategy::Combined,
        &TOTALS,
        &TuneOptions::serial(),
    );
    let scratch = scratch.expect("from-scratch tune on the synthetic target");
    let slowdown = fat_seconds / scratch.best_seconds;
    assert!(
        slowdown.is_finite() && slowdown >= 1.0 - 1e-12,
        "from-scratch tuning searches a superset of the variant pool, got {slowdown}"
    );
    eprintln!(
        "synthetic GPU fallback: dispatched {} via {} — {fat_seconds:.3e}s vs \
         from-scratch {:.3e}s ({slowdown:.3}x slowdown)",
        d.config, d.via.name, scratch.best_seconds
    );

    // Kind-scoped fallback: a perturbed CPU must resolve to a CPU entry,
    // never leak across the divide to a (feature-closer) GPU.
    let mut cpu = targets::cpu_desktop8();
    cpu.name = "CPU Desktop 12c AVX2";
    cpu.cores = 12;
    let d = fat
        .dispatch(&cpu)
        .expect("synthetic CPU resolves via nearest neighbor");
    assert!(!d.exact);
    assert_eq!(d.via.kind, respec::sim::TargetKind::Cpu);
    let (_, cpu_seconds) = run_with_version(app.as_ref(), d.func, &cpu);
    assert!(cpu_seconds > 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gpu_only_fat_binary_rejects_cpu_dispatch() {
    let options = env_options();
    let gpu_targets: Vec<Arc<dyn TargetModel>> = fatbin_targets()
        .into_iter()
        .filter(|t| t.kind() == respec::sim::TargetKind::Gpu)
        .collect();
    let dir = temp_cache_dir("gpu-only");
    let cache = Arc::new(TuningCache::open(&dir).expect("cache opens"));
    let apps = all_apps_with_gemm(Workload::Small);
    let app = apps.iter().find(|a| a.name() == "nn").expect("registered");
    let fat = fatbin_for_app(
        app.as_ref(),
        &gpu_targets,
        &TOTALS,
        &cache,
        EPSILON,
        &options,
    )
    .expect("GPU-only fat binary mines");
    assert!(fat
        .targets
        .iter()
        .all(|t| t.kind == respec::sim::TargetKind::Gpu));
    let cpu = targets::by_name("cpu-desktop8").expect("registered");
    match fat.dispatch(cpu.as_ref()) {
        Err(Error::Fatbin(m)) => {
            assert!(m.contains("cpu"), "error should name the missing kind: {m}");
        }
        other => panic!("expected Error::Fatbin, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cold_cache_is_a_structured_error_not_a_panic() {
    let dir = temp_cache_dir("cold");
    let cache = TuningCache::open(&dir).expect("cache opens");
    let apps = all_apps_with_gemm(Workload::Small);
    let app = apps.iter().find(|a| a.name() == "nn").expect("registered");
    let module = compiled_module(app.as_ref(), Pipeline::PolygeistNoOpt);
    let func = module.function(app.main_kernel()).expect("kernel").clone();
    let result = respec::mine_fatbin(
        &func,
        &fatbin_targets(),
        &cache,
        EPSILON,
        &TuneOptions::serial(),
        |t| {
            let t = t.clone();
            let module = module.clone();
            let app_name = app.main_kernel().to_string();
            let app = &**app;
            move |version: &respec::Function, _regs: u32| {
                let mut m = module.clone();
                m.add_function(version.clone());
                let mut sim = GpuSim::for_model(t.as_ref());
                app.run(&mut sim, &m)?;
                Ok(filtered_kernel_seconds(&sim, &app_name))
            }
        },
        &respec::Trace::disabled(),
    );
    match result {
        Err(Error::Fatbin(m)) => assert!(
            m.contains("cold-tune"),
            "cold-store error should say how to fix it: {m}"
        ),
        other => panic!("expected Error::Fatbin on a cold store, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_winner_store_is_a_structured_error_not_a_panic() {
    let options = env_options();
    let fat_targets = fatbin_targets();
    let dir = temp_cache_dir("corrupt");
    let cache = Arc::new(TuningCache::open(&dir).expect("cache opens"));
    let apps = all_apps_with_gemm(Workload::Small);
    let app = apps.iter().find(|a| a.name() == "nn").expect("registered");
    respec_bench::cold_tune_app(app.as_ref(), &fat_targets, &TOTALS, &cache, &options)
        .expect("cold tune populates the store");
    // Trash every winner entry in place (truncated garbage, not JSON).
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).expect("store dir lists") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("w-") {
            std::fs::write(&path, b"\x00garbage\xff").expect("corrupt entry");
            corrupted += 1;
        }
    }
    assert!(
        corrupted > 0,
        "cold tune must have stored winners to corrupt"
    );
    let module = compiled_module(app.as_ref(), Pipeline::PolygeistNoOpt);
    let func = module.function(app.main_kernel()).expect("kernel").clone();
    let result = respec::mine_fatbin(
        &func,
        &fat_targets,
        &cache,
        EPSILON,
        &TuneOptions::serial(),
        |t| {
            let t = t.clone();
            let module = module.clone();
            let kernel = app.main_kernel().to_string();
            let app = &**app;
            move |version: &respec::Function, _regs: u32| {
                let mut m = module.clone();
                m.add_function(version.clone());
                let mut sim = GpuSim::for_model(t.as_ref());
                app.run(&mut sim, &m)?;
                Ok(filtered_kernel_seconds(&sim, &kernel))
            }
        },
        &respec::Trace::disabled(),
    );
    match result {
        Err(Error::Fatbin(_)) => {}
        other => panic!("expected Error::Fatbin on a corrupt store, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
