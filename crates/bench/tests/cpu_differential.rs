//! GPU-sim ↔ CPU-sim differential.
//!
//! The GPU-to-CPU lowering is a pure scheduling transformation: barriers
//! become loop fission, the thread loop becomes SIMD-lane-strided tiles,
//! shared memory becomes core-local scratch — but every output element is
//! still produced by the same arithmetic on the same inputs in the same
//! barrier-delimited phase order. So for every Rodinia app the lowered
//! module must produce *bit-identical* outputs on the CPU projection of
//! the simulator, and the lowered IR must pass the static race/divergence
//! gate (the fission is only legal because the kernels are race-free).

use respec::opt::{lower_module_to_cpu, CpuLoweringParams};
use respec::sim::TargetModel;
use respec::{targets, GpuSim};
use respec_bench::{compiled_module, Pipeline};
use respec_rodinia::{all_apps_sized, Workload};

#[test]
fn every_app_is_bit_identical_on_gpu_and_cpu_sims() {
    for app in all_apps_sized(Workload::Small) {
        let module = compiled_module(app.as_ref(), Pipeline::PolygeistNoOpt);
        let mut gpu_sim = GpuSim::new(targets::a100());
        let gpu_out = app.run(&mut gpu_sim, &module).expect("gpu run");
        for cpu in targets::all_cpu_targets() {
            let lowered = lower_module_to_cpu(
                &module,
                &CpuLoweringParams {
                    lanes: i64::from(cpu.exec_width()),
                },
            );
            let mut cpu_sim = GpuSim::for_model(&cpu);
            let cpu_out = app.run(&mut cpu_sim, &lowered).expect("cpu run");
            let ctx = format!("{} on {}", app.name(), cpu.name());
            assert_eq!(
                gpu_out.len(),
                cpu_out.len(),
                "output length diverged: {ctx}"
            );
            for (i, (g, c)) in gpu_out.iter().zip(&cpu_out).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    c.to_bits(),
                    "output[{i}] diverged: {ctx} (gpu {g}, cpu {c})"
                );
            }
        }
    }
}

#[test]
fn reduced_cpu_tuning_sweep_elects_a_valid_winner() {
    let totals = [1, 2];
    for app in all_apps_sized(Workload::Small).into_iter().take(3) {
        for cpu in targets::all_cpu_targets() {
            let (module, result) = respec_bench::tuned_module_with(
                app.as_ref(),
                &cpu,
                respec::Strategy::Combined,
                &totals,
                &respec::TuneOptions::serial(),
            );
            let ctx = format!("{} on {}", app.name(), cpu.name());
            let result = result.unwrap_or_else(|| panic!("no winner: {ctx}"));
            assert!(result.best_seconds > 0.0, "winner unmeasured: {ctx}");
            assert!(
                result.candidates.iter().any(|c| c.seconds.is_some()),
                "nothing measured: {ctx}"
            );
            // The installed winner (the lowered tiled form) still drives the
            // whole app correctly on the CPU simulator.
            let mut sim = GpuSim::for_model(&cpu);
            app.run(&mut sim, &module)
                .unwrap_or_else(|e| panic!("tuned module fails: {ctx}: {e:?}"));
        }
    }
}

#[test]
fn lowered_modules_pass_the_race_and_divergence_gate() {
    let cpu = targets::cpu_desktop8();
    let params = CpuLoweringParams {
        lanes: i64::from(cpu.exec_width()),
    };
    for app in all_apps_sized(Workload::Small) {
        let module = compiled_module(app.as_ref(), Pipeline::PolygeistNoOpt);
        let lowered = lower_module_to_cpu(&module, &params);
        for func in lowered.functions() {
            respec::ir::verify_function(func).unwrap_or_else(|e| {
                panic!("{}/{}: lowered IR invalid: {e}", app.name(), func.name())
            });
        }
        let report = respec::analyze::analyze_module(&lowered);
        let errors: Vec<_> = report.errors().collect();
        assert!(
            errors.is_empty(),
            "{}: lowered module fails the gate: {:?}",
            app.name(),
            errors
        );
    }
}
