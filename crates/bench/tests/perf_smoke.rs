//! CI perf gate: the parallel tuning engine must not lose to the serial
//! one on a multi-core machine.
//!
//! Ignored by default because the assertion is only meaningful with real
//! cores: on a single-core container the parallel engine pays thread
//! overhead for no concurrency and legitimately lands near (or below)
//! 1.0×. The `tune-perf-smoke` CI job runs it explicitly, in release
//! mode, on a multi-core runner:
//!
//! ```text
//! cargo test --release -p respec-bench --test perf_smoke -- --ignored
//! ```

use respec::{targets, tune_kernel_pooled, Strategy, Trace, TuneOptions};
use respec_bench::{app_runner, compiled_module, Pipeline};
use respec_rodinia::{all_apps_sized, Workload};

/// Reduced sweep: a handful of apps, small totals, one serial and one
/// 4-worker search each. Aggregate wall-clock is compared so one noisy
/// app can't flip the verdict.
#[test]
#[ignore = "perf gate — run explicitly on a multi-core CI runner"]
fn parallel_engine_beats_or_matches_serial() {
    let target = targets::a100();
    let totals = [1, 2, 4];
    let mut serial_total = 0.0;
    let mut parallel_total = 0.0;
    for app in all_apps_sized(Workload::Small).into_iter().take(4) {
        let module = compiled_module(app.as_ref(), Pipeline::PolygeistNoOpt);
        let name = app.main_kernel().to_string();
        let func = module.function(&name).expect("main kernel").clone();
        let launches = respec::ir::kernel::analyze_function(&func).expect("kernel shape");
        let configs =
            respec::candidate_configs(Strategy::Combined, &totals, &launches[0].block_dims);
        let timed = |options: &TuneOptions| {
            let started = std::time::Instant::now();
            let result = tune_kernel_pooled(
                &func,
                &target,
                &configs,
                options,
                || app_runner(app.as_ref(), &module, &target, &name),
                &Trace::disabled(),
            )
            .expect("search completes");
            (started.elapsed().as_secs_f64(), result)
        };
        // Warm-up evaluates every candidate once so lazy one-time costs
        // (first-touch pages, cache files) don't land on either side.
        let _ = timed(&TuneOptions::serial());
        let (serial_s, serial) = timed(&TuneOptions::serial());
        let (parallel_s, parallel) = timed(&TuneOptions::with_parallelism(4));
        assert_eq!(serial.best_config, parallel.best_config, "{}", app.name());
        assert_eq!(
            serial.best_seconds.to_bits(),
            parallel.best_seconds.to_bits(),
            "{}",
            app.name()
        );
        eprintln!(
            "perf_smoke[{}]: serial {serial_s:.3}s parallel {parallel_s:.3}s ({:.2}x)",
            app.name(),
            serial_s / parallel_s.max(1e-12),
        );
        serial_total += serial_s;
        parallel_total += parallel_s;
    }
    let speedup = serial_total / parallel_total.max(1e-12);
    eprintln!("perf_smoke: aggregate speedup {speedup:.2}x (gate: >= 1.0)");
    assert!(
        speedup >= 1.0,
        "parallel engine lost to serial: {serial_total:.3}s serial vs \
         {parallel_total:.3}s parallel ({speedup:.2}x)"
    );
}
