//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§VII) on the simulated targets.
//!
//! Each `figNN`/`tableN` function prints the same rows/series the paper
//! reports and returns the underlying numbers so tests and `EXPERIMENTS.md`
//! tooling can assert on the *shape* of the results (who wins, by roughly
//! what factor) without depending on absolute simulated times.

use respec::opt::optimize;
use respec::sim::SimError;
use respec::{
    candidate_configs, targets, tune_kernel_pooled, CoarsenConfig, ExecMode, Function, GpuSim,
    Module, PhaseTimings, Strategy, TargetDesc, TargetModel, Trace, TuneOptions, TuneResult,
    TuningCache,
};
use respec_rodinia::{all_apps_sized, compile_app, App, Workload};

/// Kernel-measurement filter: the paper discards kernel runs shorter than
/// 1e-4 s on real hardware (§VII-A). At simulated scale we use a
/// self-relative filter — launches shorter than this fraction of the run's
/// largest launch of the same kernel are the shrinking-grid tail the
/// paper's absolute cutoff removes.
pub const KERNEL_FILTER_FRACTION: f64 = 0.25;

/// Sums the kernel time of `name`, discarding the short-run tail (see
/// [`KERNEL_FILTER_FRACTION`]).
pub fn filtered_kernel_seconds(sim: &GpuSim, name: &str) -> f64 {
    let max = sim
        .launch_log
        .iter()
        .filter(|t| t.kernel == name)
        .map(|t| t.seconds)
        .fold(0.0f64, f64::max);
    sim.kernel_seconds_above(name, max * KERNEL_FILTER_FRACTION)
}

/// Compilation pipelines compared in Fig. 16/17.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pipeline {
    /// The mainstream-compiler baseline (clang / hipify+clang): same
    /// frontend and backend, no parallel optimizations.
    Clang,
    /// Polygeist-GPU with coarsening disabled — adds the
    /// parallel-representation cleanups (LICM across shared memory, CSE).
    PolygeistNoOpt,
    /// Polygeist-GPU with coarsening + timing-driven optimization.
    PolygeistOpt,
}

impl Pipeline {
    /// Short label used in figure rows.
    pub fn label(self) -> &'static str {
        match self {
            Pipeline::Clang => "clang",
            Pipeline::PolygeistNoOpt => "P-G",
            Pipeline::PolygeistOpt => "P-G opt",
        }
    }
}

/// Compiles an app under a pipeline (without TDO — see [`tuned_module`]).
pub fn compiled_module(app: &dyn App, pipeline: Pipeline) -> Module {
    let mut module = compile_app(app).expect("app compiles");
    if pipeline != Pipeline::Clang {
        for func in module.functions_mut() {
            optimize(func);
        }
    }
    module
}

/// Applies target-specific backend policies to every kernel — currently
/// the AMD shared-memory offload for extreme per-thread shared usage
/// (§VII-D2); this runs for *every* pipeline, as it happens in the vendor
/// backend below both clang and Polygeist.
pub fn apply_target_lowering(module: &mut Module, target: &TargetDesc) {
    for func in module.functions_mut() {
        respec::opt::offload_shared_to_global(func, target.l1_bytes);
    }
}

/// Composite time (whole application, all launches + overheads) of an app
/// under a pipeline on a target. For [`Pipeline::PolygeistOpt`] the main
/// kernel is autotuned first (TDO with kernel-scope timing).
pub fn composite_seconds(
    app: &dyn App,
    target: &TargetDesc,
    pipeline: Pipeline,
    totals: &[i64],
) -> f64 {
    let mut module = match pipeline {
        Pipeline::PolygeistOpt => tuned_module(app, target, Strategy::Combined, totals),
        _ => compiled_module(app, pipeline),
    };
    apply_target_lowering(&mut module, target);
    let mut sim = GpuSim::new(target.clone());
    app.run(&mut sim, &module).expect("app runs");
    sim.elapsed_seconds
}

/// Per-worker measurement runner over a full app run, scoped to one kernel:
/// drops the candidate version into a module clone, runs the whole app on a
/// fresh simulator, and reports the filtered main-kernel time. Building one
/// per worker thread is what lets the engine measure candidates in parallel.
pub fn app_runner<'a>(
    app: &'a dyn App,
    module: &'a Module,
    target: &'a dyn TargetModel,
    kernel: &'a str,
) -> impl FnMut(&Function, u32) -> Result<f64, SimError> + 'a {
    move |version, _regs| {
        let mut m = module.clone();
        m.add_function(version.clone());
        let mut sim = GpuSim::for_model(target);
        app.run(&mut sim, &m)?;
        Ok(filtered_kernel_seconds(&sim, kernel))
    }
}

/// Autotunes the app's main kernel (kernel-scope objective) and returns the
/// module with the winner substituted. Falls back to the untuned module if
/// nothing survives pruning. Worker count comes from the environment
/// ([`TuneOptions::from_env`], `RESPEC_TUNE_PARALLELISM`).
pub fn tuned_module(
    app: &dyn App,
    target: &dyn TargetModel,
    strategy: Strategy,
    totals: &[i64],
) -> Module {
    let options = TuneOptions::from_env().expect("invalid RESPEC_* environment");
    tuned_module_with(app, target, strategy, totals, &options).0
}

/// [`tuned_module`] with an explicit worker configuration, also returning
/// the tuning result (when any candidate survived) for inspection.
pub fn tuned_module_with(
    app: &dyn App,
    target: &dyn TargetModel,
    strategy: Strategy,
    totals: &[i64],
    options: &TuneOptions,
) -> (Module, Option<TuneResult>) {
    let mut module = compiled_module(app, Pipeline::PolygeistNoOpt);
    let name = app.main_kernel().to_string();
    let func = module.function(&name).expect("main kernel").clone();
    let launches = respec::ir::kernel::analyze_function(&func).expect("kernel shape");
    let configs = candidate_configs(strategy, totals, &launches[0].block_dims);
    let result = tune_kernel_pooled(
        &func,
        target,
        &configs,
        options,
        || app_runner(app, &module, target, &name),
        &Trace::disabled(),
    )
    .ok();
    if let Some(r) = &result {
        // Surface best-effort degradation (injected faults, lost
        // candidates) without failing the harness: the winner is still the
        // best *surviving* candidate.
        if let Some(d) = r.degraded() {
            eprintln!(
                "tuned_module[{}]: degraded search — {} fault(s) injected, {} retries, \
                 {} recovered, {} abandoned, {} candidate(s) lost",
                app.name(),
                d.faults_injected,
                d.retries,
                d.recovered,
                d.abandoned,
                d.lost.len()
            );
        }
        module.add_function(r.best.clone());
    }
    (module, result)
}

/// Best (minimum) main-kernel time over a strategy's candidate set, plus
/// the identity time — the Fig. 13 measurement for one app. Candidates are
/// evaluated on the parallel tuning engine ([`TuneOptions::from_env`]).
pub fn strategy_best(
    app: &dyn App,
    target: &TargetDesc,
    strategy: Strategy,
    totals: &[i64],
) -> (f64, f64) {
    let module = compiled_module(app, Pipeline::PolygeistNoOpt);
    let name = app.main_kernel().to_string();
    let func = module.function(&name).expect("main kernel").clone();
    let launches = respec::ir::kernel::analyze_function(&func).expect("kernel shape");
    let configs = candidate_configs(strategy, totals, &launches[0].block_dims);
    let mut identity = f64::INFINITY;
    let mut best = f64::INFINITY;
    let _ = tune_kernel_pooled(
        &func,
        target,
        &configs,
        &TuneOptions::from_env().expect("invalid RESPEC_* environment"),
        || app_runner(app, &module, target, &name),
        &Trace::disabled(),
    )
    .map(|r| {
        for c in &r.candidates {
            if let Some(s) = c.seconds {
                if c.config.is_identity() {
                    identity = s;
                }
                best = best.min(s);
            }
        }
    });
    (identity, best)
}

/// Tuning-engine throughput on one app: wall-clock of a full Combined-
/// strategy search, serial vs parallel (the `tune_throughput` benchmark's
/// unit of measurement).
#[derive(Clone, Debug)]
pub struct TuneThroughputRow {
    /// Application name.
    pub app: String,
    /// Candidate configurations the search evaluated.
    pub candidates: usize,
    /// Wall-clock seconds of the serial (`parallelism = 1`) search.
    pub serial_seconds: f64,
    /// Wall-clock seconds of the parallel search.
    pub parallel_seconds: f64,
    /// Worker count used for the parallel search.
    pub parallelism: usize,
    /// Compilation-cache hit rate of the search (identical for both runs —
    /// cache behavior is deterministic).
    pub cache_hit_rate: f64,
    /// Wall-clock seconds of a serial search against a fresh persistent
    /// cache directory (misses everywhere, populates the store).
    pub cold_cache_seconds: f64,
    /// Wall-clock seconds of the identical search re-run against the
    /// now-populated store: the stored winner replays, zero compiles and
    /// zero measurements.
    pub warm_cache_seconds: f64,
    /// Persistent-cache hits of the warm run (1 = winner replay).
    pub warm_persistent_hits: usize,
    /// Per-phase breakdown of the serial search (busy seconds).
    pub serial_timings: PhaseTimings,
    /// Per-phase breakdown of the parallel search (busy seconds summed
    /// across workers; see [`PhaseTimings`]).
    pub parallel_timings: PhaseTimings,
    /// Candidate count of the dedup-visible sweep (see
    /// [`dedup_sweep_configs`]): literal duplicates included.
    pub dedup_candidates: usize,
    /// Unique IR groups of the dedup-visible sweep (compiles performed).
    pub dedup_unique: usize,
    /// In-run compilation-cache hit rate of the dedup-visible sweep —
    /// nonzero by construction, unlike the generated default sweep whose
    /// configs are duplicate-free and lower to pairwise-distinct IR.
    pub dedup_cache_hit_rate: f64,
}

impl TuneThroughputRow {
    /// Candidates evaluated per second, serial engine.
    pub fn serial_rate(&self) -> f64 {
        self.candidates as f64 / self.serial_seconds.max(1e-12)
    }

    /// Candidates evaluated per second, parallel engine.
    pub fn parallel_rate(&self) -> f64 {
        self.candidates as f64 / self.parallel_seconds.max(1e-12)
    }

    /// Parallel-over-serial wall-clock speedup.
    pub fn speedup(&self) -> f64 {
        self.serial_seconds / self.parallel_seconds.max(1e-12)
    }

    /// Cold-over-warm wall-clock speedup of the persistent cache.
    pub fn warm_speedup(&self) -> f64 {
        self.cold_cache_seconds / self.warm_cache_seconds.max(1e-12)
    }
}

/// Client-style sweep containing entries that lower to identical IR, so
/// the engine's structural-hash dedup is visible in the in-run cache hit
/// rate. The *generated* sweep ([`candidate_configs`]) can never hit this
/// cache: it is duplicate-free by construction and distinct factors bake
/// into distinct loop structure. User-assembled grids are not so tidy —
/// this models the two ways they converge: per-dimension factors that
/// don't divide the kernel's block shape are clamped to 1 (collapsing
/// grid cells on kernels with unit dimensions), and the identity arrives
/// under its no-op alias (block-factor product 1 performs no rewrite).
pub fn dedup_sweep_configs(block_dims: &[i64]) -> Vec<CoarsenConfig> {
    let dim = |i: usize| block_dims.get(i).copied().unwrap_or(1).max(1);
    let clamp = |f: i64, d: i64| if d % f == 0 { f } else { 1 };
    let mut out = Vec::new();
    for &b in &[1i64, 2] {
        for &tx in &[1i64, 2] {
            for &ty in &[1i64, 2] {
                out.push(CoarsenConfig {
                    block: [b, 1, 1],
                    thread: [clamp(tx, dim(0)), clamp(ty, dim(1)), 1],
                });
            }
        }
    }
    out.push(CoarsenConfig {
        block: [-1, -1, 1],
        thread: [1, 1, 1],
    });
    out
}

/// Runs the dedup-visible sweep serially on an app's main kernel and
/// returns `(candidates, unique_groups, cache_hit_rate)`.
pub fn dedup_sweep_stats(app: &dyn App, target: &TargetDesc) -> (usize, usize, f64) {
    let module = compiled_module(app, Pipeline::PolygeistNoOpt);
    let name = app.main_kernel().to_string();
    let func = module.function(&name).expect("main kernel").clone();
    let launches = respec::ir::kernel::analyze_function(&func).expect("kernel shape");
    let configs = dedup_sweep_configs(&launches[0].block_dims);
    let result = tune_kernel_pooled(
        &func,
        target,
        &configs,
        &TuneOptions::serial(),
        || app_runner(app, &module, target, &name),
        &Trace::disabled(),
    );
    match result {
        Ok(r) => (
            configs.len(),
            r.stats.cache_misses,
            r.stats.cache_hit_rate(),
        ),
        Err(_) => (configs.len(), 0, 0.0),
    }
}

/// Times a Combined-strategy search per app: once serial, once with
/// `parallelism` workers, and cold-then-warm against a fresh persistent
/// cache directory (removed afterwards).
pub fn tune_throughput_data(
    workload: Workload,
    totals: &[i64],
    parallelism: usize,
) -> Vec<TuneThroughputRow> {
    let target = targets::a100();
    let mut rows = Vec::new();
    for app in all_apps_sized(workload) {
        let start = std::time::Instant::now();
        let (_, serial) = tuned_module_with(
            app.as_ref(),
            &target,
            Strategy::Combined,
            totals,
            &TuneOptions::serial(),
        );
        let serial_seconds = start.elapsed().as_secs_f64();
        let start = std::time::Instant::now();
        let (_, parallel) = tuned_module_with(
            app.as_ref(),
            &target,
            Strategy::Combined,
            totals,
            &TuneOptions::with_parallelism(parallelism),
        );
        let parallel_seconds = start.elapsed().as_secs_f64();
        let result = parallel.as_ref().or(serial.as_ref());

        let cache_dir = std::env::temp_dir().join(format!(
            "respec-bench-cache-{}-{}",
            std::process::id(),
            app.name()
        ));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let cached_options = || {
            let cache = TuningCache::open(&cache_dir).expect("bench cache dir");
            TuneOptions::serial().cache(std::sync::Arc::new(cache))
        };
        let start = std::time::Instant::now();
        let _ = tuned_module_with(
            app.as_ref(),
            &target,
            Strategy::Combined,
            totals,
            &cached_options(),
        );
        let cold_cache_seconds = start.elapsed().as_secs_f64();
        let start = std::time::Instant::now();
        let (_, warm) = tuned_module_with(
            app.as_ref(),
            &target,
            Strategy::Combined,
            totals,
            &cached_options(),
        );
        let warm_cache_seconds = start.elapsed().as_secs_f64();
        let _ = std::fs::remove_dir_all(&cache_dir);

        let (dedup_candidates, dedup_unique, dedup_cache_hit_rate) =
            dedup_sweep_stats(app.as_ref(), &target);

        rows.push(TuneThroughputRow {
            app: app.name().to_string(),
            candidates: result.map(|r| r.candidates.len()).unwrap_or(0),
            serial_seconds,
            parallel_seconds,
            parallelism,
            cache_hit_rate: result.map(|r| r.stats.cache_hit_rate()).unwrap_or(0.0),
            cold_cache_seconds,
            warm_cache_seconds,
            warm_persistent_hits: warm.map(|r| r.stats.persistent_hits).unwrap_or(0),
            serial_timings: serial.as_ref().map(|r| r.timings).unwrap_or_default(),
            parallel_timings: parallel.as_ref().map(|r| r.timings).unwrap_or_default(),
            dedup_candidates,
            dedup_unique,
            dedup_cache_hit_rate,
        });
    }
    rows
}

/// Interpreter throughput on one app: warp-level instruction issues
/// retired per wall-clock second under scalar vs warp-vectorized
/// execution (the `interp_throughput` microbenchmark's unit of
/// measurement). Both modes execute the identical instruction stream —
/// the counters are part of the scalar↔vectorized equivalence contract —
/// so the issue count is reported once.
#[derive(Clone, Debug)]
pub struct InterpThroughputRow {
    /// Application name.
    pub app: String,
    /// Warp-level instruction issues of one full app run, summed over
    /// every launch (identical across execution modes).
    pub total_issues: u64,
    /// Host wall-clock seconds of one full app run, scalar interpreter.
    pub scalar_seconds: f64,
    /// Host wall-clock seconds of one full app run, warp-vectorized
    /// interpreter.
    pub warp_seconds: f64,
}

impl InterpThroughputRow {
    /// Warp-level issues per host second, scalar interpreter.
    pub fn scalar_ops_per_sec(&self) -> f64 {
        self.total_issues as f64 / self.scalar_seconds.max(1e-12)
    }

    /// Warp-level issues per host second, warp-vectorized interpreter.
    pub fn warp_ops_per_sec(&self) -> f64 {
        self.total_issues as f64 / self.warp_seconds.max(1e-12)
    }

    /// Warp-vectorized-over-scalar wall-clock speedup.
    pub fn speedup(&self) -> f64 {
        self.scalar_seconds / self.warp_seconds.max(1e-12)
    }
}

/// Times `repeats` full app runs per execution mode per app and reports
/// the mean seconds per run alongside the issue count. The first run of
/// each mode is an untimed warm-up so one-time costs (decode, lazy
/// allocations, page faults) don't pollute the smallest workloads.
pub fn interp_throughput_data(workload: Workload, repeats: usize) -> Vec<InterpThroughputRow> {
    let target = targets::a100();
    let repeats = repeats.max(1);
    let mut rows = Vec::new();
    for app in all_apps_sized(workload) {
        let module = compiled_module(app.as_ref(), Pipeline::PolygeistNoOpt);
        let timed_run = |mode: ExecMode| -> (f64, u64) {
            let mut issues = 0u64;
            let mut seconds = 0.0;
            for rep in 0..=repeats {
                let mut sim = GpuSim::new(target.clone());
                sim.set_exec_mode(mode);
                let started = std::time::Instant::now();
                app.run(&mut sim, &module).expect("app runs");
                if rep > 0 {
                    seconds += started.elapsed().as_secs_f64();
                }
                issues = sim.launch_log.iter().map(|t| t.stats.total_issues()).sum();
            }
            (seconds / repeats as f64, issues)
        };
        let (scalar_seconds, scalar_issues) = timed_run(ExecMode::Scalar);
        let (warp_seconds, warp_issues) = timed_run(ExecMode::WarpVectorized);
        assert_eq!(
            scalar_issues,
            warp_issues,
            "issue counters diverged between execution modes on {}",
            app.name()
        );
        rows.push(InterpThroughputRow {
            app: app.name().to_string(),
            total_issues: scalar_issues,
            scalar_seconds,
            warp_seconds,
        });
    }
    rows
}

/// Geometric mean (1.0 for an empty slice).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// Prints Table I: the four evaluation targets and their specifications.
pub fn table1() {
    println!("== Table I: GPUs used for evaluation ==");
    println!(
        "{:<16} {:>8} {:>6} {:>12} {:>12} {:>12} {:>10} {:>10} {:>12}",
        "GPU", "vendor", "SMs", "f64 FLOPs", "f32 FLOPs", "mem BW", "global", "L2", "L1/SM"
    );
    for t in targets::all_targets() {
        println!(
            "{:<16} {:>8} {:>6} {:>10.2}T {:>10.2}T {:>9.0}GB/s {:>8}GB {:>8}MB {:>10}KB",
            t.name,
            format!("{:?}", t.vendor),
            t.sm_count,
            t.fp64_flops / 1e12,
            t.fp32_flops / 1e12,
            t.dram_bw / 1e9,
            t.global_bytes >> 30,
            t.l2_bytes >> 20,
            t.l1_bytes >> 10,
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// Fig. 13: combined vs thread-only (and block-only) coarsening
// ---------------------------------------------------------------------------

/// One row of the Fig. 13 data.
#[derive(Clone, Debug)]
pub struct Fig13Row {
    /// Application name.
    pub app: String,
    /// Speedup of the best thread-only configuration over identity.
    pub thread_only: f64,
    /// Speedup of the best block-only configuration over identity.
    pub block_only: f64,
    /// Speedup of the best combined configuration over identity.
    pub combined: f64,
}

/// Computes the Fig. 13 data without printing: per-kernel best speedups per
/// strategy on the A100 model, one row per app.
pub fn fig13_data(workload: Workload, totals: &[i64]) -> Vec<Fig13Row> {
    let target = targets::a100();
    let mut rows = Vec::new();
    for app in all_apps_sized(workload) {
        let (id_t, best_t) = strategy_best(app.as_ref(), &target, Strategy::ThreadOnly, totals);
        let (id_b, best_b) = strategy_best(app.as_ref(), &target, Strategy::BlockOnly, totals);
        let (id_c, best_c) = strategy_best(app.as_ref(), &target, Strategy::Combined, totals);
        rows.push(Fig13Row {
            app: app.name().to_string(),
            thread_only: id_t / best_t,
            block_only: id_b / best_b,
            combined: id_c / best_c,
        });
    }
    rows
}

/// Runs the Fig. 13 experiment and prints the table. Returns one row per
/// app (see [`fig13_data`] for the print-free variant).
pub fn fig13(workload: Workload, totals: &[i64]) -> Vec<Fig13Row> {
    let rows = fig13_data(workload, totals);
    println!("== Fig. 13: best kernel speedup per coarsening strategy (A100) ==");
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "kernel", "thread-only", "block-only", "combined"
    );
    for row in &rows {
        println!(
            "{:<16} {:>11.3}x {:>11.3}x {:>11.3}x",
            row.app, row.thread_only, row.block_only, row.combined
        );
    }
    let g = |f: fn(&Fig13Row) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    println!(
        "{:<16} {:>11.3}x {:>11.3}x {:>11.3}x   (geomean; paper: 1.044 / 1.089 / 1.113)",
        "geomean",
        g(|r| r.thread_only),
        g(|r| r.block_only),
        g(|r| r.combined)
    );
    println!();
    rows
}

// ---------------------------------------------------------------------------
// Fig. 14 / Fig. 15: lud coarsening factor grids
// ---------------------------------------------------------------------------

/// Measures the main lud kernel's time under one coarsening configuration;
/// `None` means illegal or pruned (shared memory over budget).
pub fn lud_config_seconds(
    lud: &dyn App,
    target: &TargetDesc,
    config: respec::CoarsenConfig,
) -> Option<f64> {
    let module = compiled_module(lud, Pipeline::PolygeistNoOpt);
    let name = lud.main_kernel().to_string();
    let mut func = module.function(&name).expect("main kernel").clone();
    if respec::opt::coarsen_function(&mut func, config).is_err() {
        return None;
    }
    optimize(&mut func);
    // Early shared-memory pruning (decision point 2 of §VI).
    let launches = respec::ir::kernel::analyze_function(&func).ok()?;
    let shared: u64 = launches
        .iter()
        .map(|l| l.shared_bytes(&func))
        .max()
        .unwrap_or(0);
    if shared > target.shared_per_block {
        return None;
    }
    let mut m = module.clone();
    m.add_function(func);
    let mut sim = GpuSim::new(target.clone());
    lud.run(&mut sim, &m).ok()?;
    Some(sim.kernel_seconds(&name))
}

/// Evaluates a grid of cells into a matrix indexed `[row][col]`.
fn grid_data(
    rows_keys: &[i64],
    col_keys: &[i64],
    cell: impl Fn(i64, i64) -> Option<f64>,
) -> Vec<Vec<Option<f64>>> {
    rows_keys
        .iter()
        .map(|&r| col_keys.iter().map(|&c| cell(r, c)).collect())
        .collect()
}

fn print_grid(
    title: &str,
    note: &str,
    row_label: &str,
    rows_keys: &[i64],
    col_keys: &[i64],
    matrix: &[Vec<Option<f64>>],
) {
    println!("{title}");
    print!("{row_label:>8}");
    for &c in col_keys {
        print!("{c:>8}");
    }
    println!();
    for (&r, row) in rows_keys.iter().zip(matrix) {
        print!("{r:>8}");
        for v in row {
            match v {
                Some(s) => print!("{s:>8.3}"),
                None => print!("{:>8}", "--"),
            }
        }
        println!();
    }
    println!("{note}\n");
}

/// Computes the Fig. 14 data without printing: lud main-kernel speedup over
/// a grid of total (block, thread) factors relative to (1, 1).
pub fn fig14_data(
    workload: Workload,
    block_totals: &[i64],
    thread_totals: &[i64],
) -> Vec<Vec<Option<f64>>> {
    let target = targets::a100();
    let apps = all_apps_sized(workload);
    let lud = apps
        .iter()
        .find(|a| a.name() == "lud")
        .expect("lud registered");
    let base = lud_config_seconds(lud.as_ref(), &target, respec::CoarsenConfig::identity())
        .expect("identity runs");
    grid_data(block_totals, thread_totals, |b, t| {
        let bf = respec::opt::split_total(b, &[None, None, Some(1)], false)?;
        let tf = respec::opt::split_total(t, &[Some(16), Some(16), Some(1)], true)?;
        lud_config_seconds(
            lud.as_ref(),
            &target,
            respec::CoarsenConfig {
                block: bf,
                thread: tf,
            },
        )
        .map(|s| base / s)
    })
}

/// Runs the Fig. 14 experiment and prints the grid — higher is better.
/// Returns the speedup matrix indexed `[block][thread]` (see [`fig14_data`]).
pub fn fig14(
    workload: Workload,
    block_totals: &[i64],
    thread_totals: &[i64],
) -> Vec<Vec<Option<f64>>> {
    let matrix = fig14_data(workload, block_totals, thread_totals);
    print_grid(
        "== Fig. 14: lud main kernel speedup over (block, thread) total factors (A100) ==",
        "(-- = illegal or pruned; the paper peaks at block 7 x thread 2 and finds thread >= 16 breaks full warps)",
        "blk\\thr",
        block_totals,
        thread_totals,
        &matrix,
    );
    matrix
}

/// Computes the Fig. 15 data without printing: block coarsening restricted
/// to the x dimension × thread totals.
pub fn fig15_data(
    workload: Workload,
    block_x: &[i64],
    thread_totals: &[i64],
) -> Vec<Vec<Option<f64>>> {
    let target = targets::a100();
    let apps = all_apps_sized(workload);
    let lud = apps
        .iter()
        .find(|a| a.name() == "lud")
        .expect("lud registered");
    let base = lud_config_seconds(lud.as_ref(), &target, respec::CoarsenConfig::identity())
        .expect("identity runs");
    grid_data(block_x, thread_totals, |bx, t| {
        let tf = respec::opt::split_total(t, &[Some(16), Some(16), Some(1)], true)?;
        lud_config_seconds(
            lud.as_ref(),
            &target,
            respec::CoarsenConfig {
                block: [bx, 1, 1],
                thread: tf,
            },
        )
        .map(|s| base / s)
    })
}

/// Runs the Fig. 15 experiment and prints the grid. Returns the speedup
/// matrix `[block_x][thread]` (see [`fig15_data`]).
pub fn fig15(workload: Workload, block_x: &[i64], thread_totals: &[i64]) -> Vec<Vec<Option<f64>>> {
    let matrix = fig15_data(workload, block_x, thread_totals);
    print_grid(
        "== Fig. 15: lud speedup, block coarsening in x only x thread totals (A100) ==",
        "(x-direction coarsening preserves locality better than y; the paper peaks at 1.94x for bx 2 x thread 8)",
        "bx\\thr",
        block_x,
        thread_totals,
        &matrix,
    );
    matrix
}

// ---------------------------------------------------------------------------
// Table II: lud profiling counters
// ---------------------------------------------------------------------------

/// Table II counters for one configuration.
#[derive(Clone, Debug)]
pub struct ProfileRow {
    /// `(block_total, thread_total)` label.
    pub label: String,
    /// Main-kernel runtime in seconds.
    pub runtime: f64,
    /// Load/store unit utilization (0–1).
    pub lsu_util: f64,
    /// FMA pipe utilization (0–1).
    pub fma_util: f64,
    /// L2→L1 read bytes.
    pub l2_l1_read: u64,
    /// L1→L2 write bytes.
    pub l1_l2_write: u64,
    /// L1→SM read requests.
    pub l1_sm_read_req: u64,
    /// SM→L1 write requests.
    pub sm_l1_write_req: u64,
    /// Shared→SM read requests.
    pub shmem_read_req: u64,
    /// SM→Shared write requests.
    pub shmem_write_req: u64,
}

/// Computes the Table II data without printing: profiles lud at the
/// paper's three configurations — (1,1), (4,1) block-only, (1,4)
/// thread-only — on the A100 model.
pub fn table2_data(workload: Workload) -> Vec<ProfileRow> {
    let target = targets::a100();
    let apps = all_apps_sized(workload);
    let lud = apps
        .iter()
        .find(|a| a.name() == "lud")
        .expect("lud registered");
    let configs = [
        ("(1, 1)", respec::CoarsenConfig::identity()),
        (
            "(4, 1)",
            respec::CoarsenConfig {
                block: [4, 1, 1],
                thread: [1, 1, 1],
            },
        ),
        (
            "(1, 4)",
            respec::CoarsenConfig {
                block: [1, 1, 1],
                thread: [2, 2, 1],
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, cfg) in configs {
        let module = compiled_module(lud.as_ref(), Pipeline::PolygeistNoOpt);
        let name = lud.main_kernel().to_string();
        let mut func = module.function(&name).expect("main kernel").clone();
        respec::opt::coarsen_function(&mut func, cfg).expect("legal config");
        optimize(&mut func);
        let mut m = module.clone();
        m.add_function(func);
        let mut sim = GpuSim::new(target.clone());
        lud.run(&mut sim, &m).expect("runs");
        // Counters and utilization are scoped to the main kernel, like the
        // paper's Nsight profile.
        let runtime = sim.kernel_seconds(&name);
        let stats = sim.kernel_stats(&name);
        let lsu_req = stats.global_load_requests
            + stats.global_store_requests
            + stats.shared_read_requests
            + stats.shared_write_requests
            + stats.shared_conflict_extra;
        let cycles = (runtime * target.clock_hz).max(1.0);
        let lsu_util = (lsu_req as f64
            / (target.lsu_per_sm_per_cycle * target.sm_count as f64 * cycles))
            .min(1.0);
        let fma = stats.issues_of(respec::sim::InstClass::Fp32)
            + stats.issues_of(respec::sim::InstClass::Fp64);
        let fma_util = (fma as f64 * target.warp_size as f64
            / (target.fp32_per_sm_cycle() * target.sm_count as f64 * cycles))
            .min(1.0);
        rows.push(ProfileRow {
            label: label.to_string(),
            runtime,
            lsu_util,
            fma_util,
            l2_l1_read: stats.l2_to_l1_read_bytes(),
            l1_l2_write: stats.l1_to_l2_write_bytes(),
            l1_sm_read_req: stats.global_load_requests,
            sm_l1_write_req: stats.global_store_requests,
            shmem_read_req: stats.shared_read_requests,
            shmem_write_req: stats.shared_write_requests,
        });
    }
    rows
}

/// Runs the Table II experiment and prints the table (see [`table2_data`]).
pub fn table2(workload: Workload) -> Vec<ProfileRow> {
    let rows = table2_data(workload);
    println!("== Table II: profiling data for lud (A100) ==");
    println!(
        "{:<24} {:>12} {:>12} {:>12}",
        "(block, thread) factors", rows[0].label, rows[1].label, rows[2].label
    );
    let fmt_b = |v: u64| format!("{:.2} MB", v as f64 / 1e6);
    let fmt_m = |v: u64| format!("{:.3} M", v as f64 / 1e6);
    let line = |name: &str, f: &dyn Fn(&ProfileRow) -> String| {
        println!(
            "{:<24} {:>12} {:>12} {:>12}",
            name,
            f(&rows[0]),
            f(&rows[1]),
            f(&rows[2])
        );
    };
    line("Runtime", &|r| format!("{:.3e} s", r.runtime));
    line("LSU utilization", &|r| {
        format!("{:.0}%", r.lsu_util * 100.0)
    });
    line("FMA utilization", &|r| {
        format!("{:.0}%", r.fma_util * 100.0)
    });
    line("L2->L1 Read", &|r| fmt_b(r.l2_l1_read));
    line("L1->L2 Write", &|r| fmt_b(r.l1_l2_write));
    line("L1->SM Read Req.", &|r| fmt_m(r.l1_sm_read_req));
    line("SM->L1 Write Req.", &|r| fmt_m(r.sm_l1_write_req));
    line("ShMem->SM Read Req.", &|r| fmt_m(r.shmem_read_req));
    line("SM->ShMem Write Req.", &|r| fmt_m(r.shmem_write_req));
    println!();
    rows
}

// ---------------------------------------------------------------------------
// Fig. 16 / Fig. 17: composite Rodinia comparisons
// ---------------------------------------------------------------------------

/// One app's composite times under the three pipelines on one target.
#[derive(Clone, Debug)]
pub struct Fig16Row {
    /// Application name.
    pub app: String,
    /// Target name.
    pub target: String,
    /// clang / hipify+clang baseline composite seconds.
    pub clang: f64,
    /// Polygeist-GPU without coarsening.
    pub pg: f64,
    /// Polygeist-GPU with coarsening + TDO.
    pub pg_opt: f64,
}

/// Computes the Fig. 16 data without printing, on the given targets.
pub fn fig16_data(workload: Workload, run_targets: &[TargetDesc], totals: &[i64]) -> Vec<Fig16Row> {
    let mut rows = Vec::new();
    for target in run_targets {
        for app in all_apps_sized(workload) {
            let clang = composite_seconds(app.as_ref(), target, Pipeline::Clang, totals);
            let pg = composite_seconds(app.as_ref(), target, Pipeline::PolygeistNoOpt, totals);
            let pg_opt = composite_seconds(app.as_ref(), target, Pipeline::PolygeistOpt, totals);
            rows.push(Fig16Row {
                app: app.name().to_string(),
                target: target.name.to_string(),
                clang,
                pg,
                pg_opt,
            });
        }
    }
    rows
}

/// Runs the Fig. 16 experiment and prints one table per target (see
/// [`fig16_data`]).
pub fn fig16(workload: Workload, run_targets: &[TargetDesc], totals: &[i64]) -> Vec<Fig16Row> {
    let rows = fig16_data(workload, run_targets, totals);
    for target in run_targets {
        println!(
            "== Fig. 16: Rodinia composite speedup over the {} baseline on {} ==",
            if matches!(target.vendor, respec::sim::Vendor::Amd) {
                "hipify+clang"
            } else {
                "clang"
            },
            target.name
        );
        println!(
            "{:<16} {:>12} {:>12} {:>12} {:>12}",
            "app", "clang(s)", "P-G", "P-G opt", "opt vs P-G"
        );
        let of_target: Vec<&Fig16Row> = rows.iter().filter(|r| r.target == target.name).collect();
        for row in &of_target {
            println!(
                "{:<16} {:>12.3e} {:>11.3}x {:>11.3}x {:>11.3}x",
                row.app,
                row.clang,
                row.clang / row.pg,
                row.clang / row.pg_opt,
                row.pg / row.pg_opt
            );
        }
        println!(
            "{:<16} {:>12} {:>11.3}x {:>11.3}x   (geomean; paper: 1.17-1.27 NVIDIA, 1.16-1.17 AMD)",
            "geomean",
            "",
            geomean(&of_target.iter().map(|r| r.clang / r.pg).collect::<Vec<_>>()),
            geomean(
                &of_target
                    .iter()
                    .map(|r| r.clang / r.pg_opt)
                    .collect::<Vec<_>>()
            )
        );
        println!();
    }
    rows
}

/// Computes the Fig. 17 data without printing: A4000 (clang) vs A4000
/// (P-G opt) vs RX6800 (P-G opt) per app. Returns
/// `(app, a4000_clang, a4000_pg, rx6800_pg)`.
pub fn fig17_data(workload: Workload, totals: &[i64]) -> Vec<(String, f64, f64, f64)> {
    let a4000 = targets::a4000();
    let rx6800 = targets::rx6800();
    let mut rows = Vec::new();
    for app in all_apps_sized(workload) {
        let base = composite_seconds(app.as_ref(), &a4000, Pipeline::Clang, totals);
        let pg_a4000 = composite_seconds(app.as_ref(), &a4000, Pipeline::PolygeistOpt, totals);
        let pg_rx = composite_seconds(app.as_ref(), &rx6800, Pipeline::PolygeistOpt, totals);
        rows.push((app.name().to_string(), base, pg_a4000, pg_rx));
    }
    rows
}

/// Runs the Fig. 17 experiment and prints the table (see [`fig17_data`]).
pub fn fig17(workload: Workload, totals: &[i64]) -> Vec<(String, f64, f64, f64)> {
    let rows = fig17_data(workload, totals);
    println!("== Fig. 17: cross-vendor comparison (baseline: clang on A4000) ==");
    println!(
        "{:<16} {:>14} {:>14} {:>14}",
        "app", "A4000 clang(s)", "A4000 P-G", "RX6800 P-G"
    );
    for (app, base, pg_a4000, pg_rx) in &rows {
        println!(
            "{:<16} {:>14.3e} {:>13.3}x {:>13.3}x",
            app,
            base,
            base / pg_a4000,
            base / pg_rx
        );
    }
    println!(
        "{:<16} {:>14} {:>13.3}x {:>13.3}x   (geomean; paper: RX6800 (P-G) 1.25x over A4000 (clang))",
        "geomean",
        "",
        geomean(&rows.iter().map(|(_, b, a, _)| b / a).collect::<Vec<_>>()),
        geomean(&rows.iter().map(|(_, b, _, r)| b / r).collect::<Vec<_>>())
    );
    println!();
    rows
}

// ---------------------------------------------------------------------------
// CPU retargeting sweep (`BENCH_cpu.json`)
// ---------------------------------------------------------------------------

/// One row of the CPU retargeting sweep: an app autotuned for one target
/// (GPU or CPU) through the unchanged tuning entry path.
#[derive(Clone, Debug)]
pub struct CpuTuneRow {
    /// Application name.
    pub app: String,
    /// Protocol name of the target.
    pub target: String,
    /// Target kind tag (`"gpu"` / `"cpu"`).
    pub kind: String,
    /// Winning coarsening configuration (per-core tile shape on CPUs).
    pub winner: String,
    /// Main-kernel seconds of the winner.
    pub best_seconds: f64,
    /// Candidate configurations generated for the search.
    pub candidates: usize,
    /// Candidates that were actually measured (not pruned/deduplicated).
    pub measured: usize,
}

/// Targets of the CPU retargeting sweep: one GPU for contrast, then the
/// simulated CPUs — so winner divergence is visible in one table.
pub fn cpu_tune_target_names() -> Vec<&'static str> {
    vec!["a100", "cpu-desktop8", "cpu-server64"]
}

/// Tunes every app's main kernel on the sweep targets (serial engine, so
/// rows are deterministic) and reports the winner per app × target. For
/// CPU targets the engine lowers each coarsened candidate to the tiled
/// multicore form before hashing and measuring, so the searched space is
/// the per-core tile ladder.
pub fn cpu_tune_data(workload: Workload, totals: &[i64]) -> Vec<CpuTuneRow> {
    let options = TuneOptions::serial();
    let mut rows = Vec::new();
    for app in all_apps_sized(workload) {
        for name in cpu_tune_target_names() {
            let target = targets::by_name(name).expect("sweep target registered");
            let (_, result) = tuned_module_with(
                app.as_ref(),
                target.as_ref(),
                Strategy::Combined,
                totals,
                &options,
            );
            let result = result.expect("tune produces a winner");
            rows.push(CpuTuneRow {
                app: app.name().to_string(),
                target: name.to_string(),
                kind: target.kind().tag().to_string(),
                winner: result.best_config.to_string(),
                best_seconds: result.best_seconds,
                candidates: result.candidates.len(),
                measured: result
                    .candidates
                    .iter()
                    .filter(|c| c.seconds.is_some())
                    .count(),
            });
        }
    }
    rows
}

/// Prints the [`cpu_tune_data`] sweep as a table, flagging apps whose GPU
/// and CPU winners diverge.
pub fn cpu_tune(workload: Workload, totals: &[i64]) -> Vec<CpuTuneRow> {
    let rows = cpu_tune_data(workload, totals);
    println!("== CPU retargeting sweep: winner per app x target ==");
    println!(
        "{:<14} {:<14} {:>5} {:>28} {:>12} {:>6}/{:<6}",
        "app", "target", "kind", "winner", "time(us)", "meas", "cands"
    );
    for r in &rows {
        println!(
            "{:<14} {:<14} {:>5} {:>28} {:>12.3} {:>6}/{:<6}",
            r.app,
            r.target,
            r.kind,
            r.winner,
            r.best_seconds * 1e6,
            r.measured,
            r.candidates
        );
    }
    let diverging = rows
        .iter()
        .filter(|r| r.kind == "gpu")
        .filter(|g| {
            rows.iter()
                .any(|c| c.app == g.app && c.kind == "cpu" && c.winner != g.winner)
        })
        .count();
    println!("apps whose CPU winner differs from the GPU winner: {diverging}");
    rows
}

// ---------------------------------------------------------------------------
// Baseline comparison (`bench_compare`)
// ---------------------------------------------------------------------------

/// One app's before/after delta between two `BENCH_tune.json` baselines.
#[derive(Clone, Debug)]
pub struct BenchDelta {
    /// Application name.
    pub app: String,
    /// Serial wall seconds in the old baseline.
    pub old_serial_s: f64,
    /// Serial wall seconds in the new baseline.
    pub new_serial_s: f64,
    /// Parallel wall seconds in the old baseline.
    pub old_parallel_s: f64,
    /// Parallel wall seconds in the new baseline.
    pub new_parallel_s: f64,
    /// Summed CPU-target winner seconds in the old baseline (present when
    /// the baseline carries `cpu_tune` rows, e.g. `BENCH_cpu.json`).
    pub old_cpu_s: Option<f64>,
    /// Summed CPU-target winner seconds in the new baseline.
    pub new_cpu_s: Option<f64>,
}

impl BenchDelta {
    /// Old-over-new serial speedup (> 1 = the new engine is faster).
    pub fn serial_speedup(&self) -> f64 {
        self.old_serial_s / self.new_serial_s.max(1e-12)
    }

    /// Old-over-new parallel speedup (> 1 = the new engine is faster).
    pub fn parallel_speedup(&self) -> f64 {
        self.old_parallel_s / self.new_parallel_s.max(1e-12)
    }

    /// Old-over-new CPU winner speedup, when both baselines carry CPU rows.
    pub fn cpu_speedup(&self) -> Option<f64> {
        match (self.old_cpu_s, self.new_cpu_s) {
            (Some(old), Some(new)) => Some(old / new.max(1e-12)),
            _ => None,
        }
    }
}

/// Engine-throughput rows of one baseline: `(app, serial_s, parallel_s)`.
type EngineRows = Vec<(String, f64, f64)>;
/// Per-app summed CPU winner seconds of one baseline.
type CpuSeconds = Vec<(String, f64)>;

/// Parses one `BENCH_tune.json` baseline (JSON lines) into
/// `(app, serial_s, parallel_s)` tuples, in file order, plus per-app summed
/// CPU winner seconds from any `cpu_tune` rows mixed into the stream.
fn parse_baseline(content: &str) -> Result<(EngineRows, CpuSeconds), String> {
    use respec::trace::json::Json;
    let mut rows = Vec::new();
    let mut cpu: Vec<(String, f64)> = Vec::new();
    for (ln, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = Json::parse(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
        let figure = obj.get("figure").and_then(Json::as_str);
        if figure != Some("tune_throughput") && figure != Some("cpu_tune") {
            continue;
        }
        let field = |key: &str| {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {}: missing numeric field {key:?}", ln + 1))
        };
        let app = obj
            .get("app")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing field \"app\"", ln + 1))?
            .to_string();
        if figure == Some("cpu_tune") {
            if obj.get("kind").and_then(Json::as_str) != Some("cpu") {
                continue;
            }
            let seconds = field("best_s")?;
            match cpu.iter_mut().find(|(a, _)| *a == app) {
                Some((_, total)) => *total += seconds,
                None => cpu.push((app, seconds)),
            }
        } else {
            rows.push((app, field("serial_s")?, field("parallel_s")?));
        }
    }
    Ok((rows, cpu))
}

/// Diffs two baselines: per-app old-over-new speedup of the serial and
/// parallel searches (`BENCH_tune.json` rows) and of the CPU retargeting
/// winners (`cpu_tune` rows, `BENCH_cpu.json`), for apps present in both
/// files. Either row family alone is enough to produce deltas.
pub fn bench_compare(old: &str, new: &str) -> Result<Vec<BenchDelta>, String> {
    let (old_rows, old_cpu) = parse_baseline(old)?;
    let (new_rows, new_cpu) = parse_baseline(new)?;
    let cpu_of =
        |set: &[(String, f64)], app: &str| set.iter().find(|(a, _)| a == app).map(|(_, s)| *s);
    let mut deltas = Vec::new();
    for (app, old_serial_s, old_parallel_s) in old_rows {
        if let Some((_, new_serial_s, new_parallel_s)) = new_rows.iter().find(|(a, _, _)| *a == app)
        {
            deltas.push(BenchDelta {
                old_cpu_s: cpu_of(&old_cpu, &app),
                new_cpu_s: cpu_of(&new_cpu, &app),
                app,
                old_serial_s,
                new_serial_s: *new_serial_s,
                old_parallel_s,
                new_parallel_s: *new_parallel_s,
            });
        }
    }
    // CPU-only baselines (two BENCH_cpu.json files): synthesize rows for
    // apps that have CPU data on both sides but no engine-throughput rows.
    for (app, old_s) in &old_cpu {
        if deltas.iter().any(|d| d.app == *app) {
            continue;
        }
        if let Some(new_s) = cpu_of(&new_cpu, app) {
            deltas.push(BenchDelta {
                app: app.clone(),
                old_serial_s: 0.0,
                new_serial_s: 0.0,
                old_parallel_s: 0.0,
                new_parallel_s: 0.0,
                old_cpu_s: Some(*old_s),
                new_cpu_s: Some(new_s),
            });
        }
    }
    if deltas.is_empty() {
        return Err("no app appears in both baselines".into());
    }
    Ok(deltas)
}

/// Prints a [`bench_compare`] result as a table with geomean footer. Rows
/// that carry only one family of data show `-` in the other columns, and
/// the geomean footer covers whatever is present.
pub fn print_bench_compare(deltas: &[BenchDelta]) {
    let fmt_s = |has: bool, v: f64| {
        if has {
            format!("{v:.3}")
        } else {
            "-".into()
        }
    };
    // CPU winner times are simulated kernel seconds (sub-microsecond), not
    // wall clock — scientific notation keeps them readable.
    let fmt_cpu = |v: Option<f64>| match v {
        Some(v) => format!("{v:.3e}"),
        None => "-".into(),
    };
    let fmt_x = |v: Option<f64>| match v {
        Some(v) => format!("{v:.2}x"),
        None => "-".into(),
    };
    println!("== bench_compare: old vs new baselines (speedup > 1 = new is faster) ==");
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "app",
        "old ser(s)",
        "new ser(s)",
        "speedup",
        "old par(s)",
        "new par(s)",
        "speedup",
        "old cpu(s)",
        "new cpu(s)",
        "speedup"
    );
    let mut serial = Vec::new();
    let mut parallel = Vec::new();
    let mut cpu = Vec::new();
    for d in deltas {
        let has_engine = d.old_serial_s > 0.0 || d.new_serial_s > 0.0;
        if has_engine {
            serial.push(d.serial_speedup());
            parallel.push(d.parallel_speedup());
        }
        if let Some(s) = d.cpu_speedup() {
            cpu.push(s);
        }
        println!(
            "{:<16} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10}",
            d.app,
            fmt_s(has_engine, d.old_serial_s),
            fmt_s(has_engine, d.new_serial_s),
            fmt_x(has_engine.then(|| d.serial_speedup())),
            fmt_s(has_engine, d.old_parallel_s),
            fmt_s(has_engine, d.new_parallel_s),
            fmt_x(has_engine.then(|| d.parallel_speedup())),
            fmt_cpu(d.old_cpu_s),
            fmt_cpu(d.new_cpu_s),
            fmt_x(d.cpu_speedup())
        );
    }
    let footer = |vals: &[f64]| {
        if vals.is_empty() {
            "-".into()
        } else {
            format!("{:.2}x", geomean(vals))
        }
    };
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10}   (geomean)",
        "geomean",
        "",
        "",
        footer(&serial),
        "",
        "",
        footer(&parallel),
        "",
        "",
        footer(&cpu)
    );
}

// ---------------------------------------------------------------------------
// Fat binaries (`BENCH_fatbin.json`)
// ---------------------------------------------------------------------------

/// The six registry targets (4 GPUs + 2 CPUs) the fat-binary experiments
/// mine over, in registry order.
pub fn fatbin_targets() -> Vec<std::sync::Arc<dyn TargetModel>> {
    targets::TARGET_NAMES
        .iter()
        .map(|name| targets::by_name(name).expect("registry target"))
        .collect()
}

/// Cold-tunes `app`'s main kernel on every target into `cache` through the
/// normal persistent-cache path. Idempotent: a re-run replays each stored
/// winner without measuring. This is the store-population step a fat-binary
/// mine requires.
///
/// # Errors
///
/// Propagates the first failed search.
pub fn cold_tune_app(
    app: &dyn App,
    fat_targets: &[std::sync::Arc<dyn TargetModel>],
    totals: &[i64],
    cache: &std::sync::Arc<TuningCache>,
    options: &TuneOptions,
) -> Result<(), respec::Error> {
    let module = compiled_module(app, Pipeline::PolygeistNoOpt);
    let name = app.main_kernel().to_string();
    let func = module.function(&name).expect("main kernel").clone();
    let launches = respec::ir::kernel::analyze_function(&func).expect("kernel shape");
    let configs = candidate_configs(Strategy::Combined, totals, &launches[0].block_dims);
    let cached = options.clone().cache(cache.clone());
    for target in fat_targets {
        tune_kernel_pooled(
            &func,
            target.as_ref(),
            &configs,
            &cached,
            || app_runner(app, &module, target.as_ref(), &name),
            &Trace::disabled(),
        )?;
    }
    Ok(())
}

/// Mines the fat binary for `app`'s main kernel over `fat_targets` at
/// `epsilon`, cold-tuning every target into `cache` first (see
/// [`cold_tune_app`]).
///
/// # Errors
///
/// Propagates tuning and mining failures.
pub fn fatbin_for_app(
    app: &dyn App,
    fat_targets: &[std::sync::Arc<dyn TargetModel>],
    totals: &[i64],
    cache: &std::sync::Arc<TuningCache>,
    epsilon: f64,
    options: &TuneOptions,
) -> Result<respec::FatCompiled, respec::Error> {
    cold_tune_app(app, fat_targets, totals, cache, options)?;
    let module = compiled_module(app, Pipeline::PolygeistNoOpt);
    let name = app.main_kernel().to_string();
    let func = module.function(&name).expect("main kernel").clone();
    respec::mine_fatbin(
        &func,
        fat_targets,
        cache,
        epsilon,
        options,
        |t| {
            let t = t.clone();
            let module = module.clone();
            let name = name.clone();
            move |version: &Function, _regs: u32| -> Result<f64, SimError> {
                let mut m = module.clone();
                m.add_function(version.clone());
                let mut sim = GpuSim::for_model(t.as_ref());
                app.run(&mut sim, &m)?;
                Ok(filtered_kernel_seconds(&sim, &name))
            }
        },
        &Trace::disabled(),
    )
}

/// One dispatch-table row of the fat-binary experiment: where one target's
/// launch lands.
#[derive(Clone, Debug)]
pub struct FatbinDispatchRow {
    /// Protocol name of the dispatched target.
    pub target: String,
    /// Target kind tag (`"gpu"` / `"cpu"`).
    pub kind: String,
    /// Index of the variant that serves the target.
    pub variant: usize,
    /// The serving variant's coarsening configuration.
    pub config: String,
    /// `true` for an exact fingerprint hit (always, for mined targets).
    pub exact: bool,
    /// The target's tuned optimum over the mined pool.
    pub tuned_seconds: f64,
    /// The serving variant's time on the target.
    pub dispatch_seconds: f64,
}

/// One app × ε row of the fat-binary coverage experiment.
#[derive(Clone, Debug)]
pub struct FatbinRow {
    /// Application name.
    pub app: String,
    /// Slowdown budget the variant set guarantees.
    pub epsilon: f64,
    /// Targets mined over.
    pub targets: usize,
    /// Variants the minimal set carries (coverage curve y-axis).
    pub variants: usize,
    /// Per-target dispatch outcome, resolved through the runtime
    /// dispatcher.
    pub dispatch: Vec<FatbinDispatchRow>,
}

impl FatbinRow {
    /// Worst per-target slowdown of the selected set (≤ 1 + ε by
    /// construction).
    pub fn max_slowdown(&self) -> f64 {
        self.dispatch
            .iter()
            .map(|d| d.dispatch_seconds / d.tuned_seconds.max(1e-300))
            .fold(1.0, f64::max)
    }

    /// Whether the set is strictly smaller than the target count — the
    /// multi-versioning payoff ("a few fit most").
    pub fn compressed(&self) -> bool {
        self.variants < self.targets
    }
}

/// Runs the fat-binary coverage experiment against a persistent cache in
/// `dir` (created if missing, reused if warm): every app × every ε, one
/// [`FatbinRow`] each, dispatch outcomes resolved through
/// [`respec::FatCompiled::dispatch`]. Workers come from `options`.
pub fn fatbin_data_in(
    dir: &std::path::Path,
    workload: Workload,
    totals: &[i64],
    epsilons: &[f64],
    options: &TuneOptions,
) -> Vec<FatbinRow> {
    let fat_targets = fatbin_targets();
    let cache = std::sync::Arc::new(TuningCache::open(dir).expect("fatbin cache dir"));
    let mut rows = Vec::new();
    for app in respec_rodinia::all_apps_with_gemm(workload) {
        for &epsilon in epsilons {
            let fat = fatbin_for_app(app.as_ref(), &fat_targets, totals, &cache, epsilon, options)
                .unwrap_or_else(|e| panic!("{}: fat binary fails to mine: {e}", app.name()));
            let dispatch = fat_targets
                .iter()
                .zip(targets::TARGET_NAMES)
                .map(|(model, name)| {
                    let d = fat
                        .dispatch(model.as_ref())
                        .unwrap_or_else(|e| panic!("{name}: dispatch fails: {e}"));
                    FatbinDispatchRow {
                        target: name.to_string(),
                        kind: model.kind().tag().to_string(),
                        variant: d.variant,
                        config: d.config.to_string(),
                        exact: d.exact,
                        tuned_seconds: d.via.tuned_seconds,
                        dispatch_seconds: d.via.dispatch_seconds,
                    }
                })
                .collect();
            rows.push(FatbinRow {
                app: app.name().to_string(),
                epsilon,
                targets: fat.targets.len(),
                variants: fat.variant_count(),
                dispatch,
            });
        }
    }
    rows
}

/// [`fatbin_data_in`] against a fresh temporary cache directory (removed
/// afterwards).
pub fn fatbin_data(
    workload: Workload,
    totals: &[i64],
    epsilons: &[f64],
    options: &TuneOptions,
) -> Vec<FatbinRow> {
    let dir = std::env::temp_dir().join(format!("respec-fatbin-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let rows = fatbin_data_in(&dir, workload, totals, epsilons, options);
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

/// Prints the [`fatbin_data`] rows: the variant-count coverage curve per ε
/// and the dispatch table per app.
pub fn print_fatbin(rows: &[FatbinRow]) {
    println!("== Fat binaries: minimal variant set per app x slowdown budget ==");
    println!(
        "{:<14} {:>8} {:>8} {:>9} {:>13} {:>11}",
        "app", "epsilon", "targets", "variants", "max slowdown", "compressed"
    );
    for r in rows {
        println!(
            "{:<14} {:>7.0}% {:>8} {:>9} {:>12.4}x {:>11}",
            r.app,
            r.epsilon * 100.0,
            r.targets,
            r.variants,
            r.max_slowdown(),
            if r.compressed() { "yes" } else { "no" }
        );
    }
    let mut by_eps: Vec<f64> = rows.iter().map(|r| r.epsilon).collect();
    by_eps.sort_by(|a, b| a.partial_cmp(b).expect("finite epsilons"));
    by_eps.dedup();
    for eps in by_eps {
        let of_eps: Vec<&FatbinRow> = rows.iter().filter(|r| r.epsilon == eps).collect();
        let compressed = of_eps.iter().filter(|r| r.compressed()).count();
        let mean_variants =
            of_eps.iter().map(|r| r.variants).sum::<usize>() as f64 / of_eps.len().max(1) as f64;
        println!(
            "epsilon {:>4.0}%: mean variants {:.2}, {}/{} apps compressed below the target count",
            eps * 100.0,
            mean_variants,
            compressed,
            of_eps.len()
        );
    }
}

// ---------------------------------------------------------------------------
// Machine-readable output (`--json`)
// ---------------------------------------------------------------------------

/// JSON-lines renderers for every figure/table: one flat object per row,
/// newline-separated, built on `respec_trace`'s dependency-free writer.
/// Every object carries a `"figure"` discriminator so mixed streams stay
/// `jq`-friendly.
pub mod jsonout {
    use respec::trace::json::JsonObject;

    use super::{
        CpuTuneRow, FatbinRow, Fig13Row, Fig16Row, InterpThroughputRow, ProfileRow,
        TuneThroughputRow,
    };

    /// Fat-binary coverage rows (`BENCH_fatbin.json`): the variant-count
    /// vs. coverage curve — one object per app × ε.
    pub fn fatbin_lines(rows: &[FatbinRow]) -> String {
        let mut out = String::new();
        for r in rows {
            out.push_str(
                &JsonObject::new()
                    .str("figure", "fatbin")
                    .str("app", &r.app)
                    .f64("epsilon", r.epsilon)
                    .u64("targets", r.targets as u64)
                    .u64("variants", r.variants as u64)
                    .f64("max_slowdown", r.max_slowdown())
                    .u64("compressed", u64::from(r.compressed()))
                    .finish(),
            );
            out.push('\n');
        }
        out
    }

    /// Fat-binary dispatch rows (`BENCH_fatbin.json`): the per-target
    /// dispatch-hit table — one object per app × ε × target.
    pub fn fatbin_dispatch_lines(rows: &[FatbinRow]) -> String {
        let mut out = String::new();
        for r in rows {
            for d in &r.dispatch {
                out.push_str(
                    &JsonObject::new()
                        .str("figure", "fatbin_dispatch")
                        .str("app", &r.app)
                        .f64("epsilon", r.epsilon)
                        .str("target", &d.target)
                        .str("kind", &d.kind)
                        .u64("variant", d.variant as u64)
                        .str("config", &d.config)
                        .u64("exact", u64::from(d.exact))
                        .f64("tuned_s", d.tuned_seconds)
                        .f64("dispatch_s", d.dispatch_seconds)
                        .f64("slowdown", d.dispatch_seconds / d.tuned_seconds.max(1e-300))
                        .finish(),
                );
                out.push('\n');
            }
        }
        out
    }

    /// CPU retargeting rows (`BENCH_cpu.json`): winner config and time per
    /// app × target, GPU and CPU side by side so divergence is greppable.
    pub fn cpu_tune_lines(rows: &[CpuTuneRow]) -> String {
        let mut out = String::new();
        for r in rows {
            out.push_str(
                &JsonObject::new()
                    .str("figure", "cpu_tune")
                    .str("app", &r.app)
                    .str("target", &r.target)
                    .str("kind", &r.kind)
                    .str("winner", &r.winner)
                    .f64("best_s", r.best_seconds)
                    .u64("candidates", r.candidates as u64)
                    .u64("measured", r.measured as u64)
                    .finish(),
            );
            out.push('\n');
        }
        out
    }

    /// Fig. 13 rows: per-app best speedup per strategy.
    pub fn fig13_lines(rows: &[Fig13Row]) -> String {
        let mut out = String::new();
        for r in rows {
            out.push_str(
                &JsonObject::new()
                    .str("figure", "fig13")
                    .str("app", &r.app)
                    .f64("thread_only", r.thread_only)
                    .f64("block_only", r.block_only)
                    .f64("combined", r.combined)
                    .finish(),
            );
            out.push('\n');
        }
        out
    }

    /// Speedup-grid rows (Fig. 14/15): one object per cell, `null` speedup
    /// for illegal/pruned configurations.
    pub fn grid_lines(
        figure: &str,
        row_key: &str,
        col_key: &str,
        row_keys: &[i64],
        col_keys: &[i64],
        matrix: &[Vec<Option<f64>>],
    ) -> String {
        let mut out = String::new();
        for (&r, row) in row_keys.iter().zip(matrix) {
            for (&c, v) in col_keys.iter().zip(row) {
                out.push_str(
                    &JsonObject::new()
                        .str("figure", figure)
                        .i64(row_key, r)
                        .i64(col_key, c)
                        .opt_f64("speedup", *v)
                        .finish(),
                );
                out.push('\n');
            }
        }
        out
    }

    /// Table I rows: one object per evaluation target.
    pub fn table1_lines() -> String {
        let mut out = String::new();
        for t in respec::targets::all_targets() {
            out.push_str(
                &JsonObject::new()
                    .str("figure", "table1")
                    .str("gpu", t.name)
                    .str("vendor", &format!("{:?}", t.vendor))
                    .u64("sms", t.sm_count as u64)
                    .f64("fp64_flops", t.fp64_flops)
                    .f64("fp32_flops", t.fp32_flops)
                    .f64("dram_bw", t.dram_bw)
                    .u64("global_bytes", t.global_bytes)
                    .u64("l2_bytes", t.l2_bytes)
                    .u64("l1_bytes", t.l1_bytes)
                    .finish(),
            );
            out.push('\n');
        }
        out
    }

    /// Table II rows: lud profiling counters per configuration.
    pub fn table2_lines(rows: &[ProfileRow]) -> String {
        let mut out = String::new();
        for r in rows {
            out.push_str(
                &JsonObject::new()
                    .str("figure", "table2")
                    .str("config", &r.label)
                    .f64("runtime_s", r.runtime)
                    .f64("lsu_util", r.lsu_util)
                    .f64("fma_util", r.fma_util)
                    .u64("l2_l1_read_bytes", r.l2_l1_read)
                    .u64("l1_l2_write_bytes", r.l1_l2_write)
                    .u64("l1_sm_read_req", r.l1_sm_read_req)
                    .u64("sm_l1_write_req", r.sm_l1_write_req)
                    .u64("shmem_read_req", r.shmem_read_req)
                    .u64("shmem_write_req", r.shmem_write_req)
                    .finish(),
            );
            out.push('\n');
        }
        out
    }

    /// Fig. 16 rows: composite seconds per app × target × pipeline.
    pub fn fig16_lines(rows: &[Fig16Row]) -> String {
        let mut out = String::new();
        for r in rows {
            out.push_str(
                &JsonObject::new()
                    .str("figure", "fig16")
                    .str("app", &r.app)
                    .str("target", &r.target)
                    .f64("clang_s", r.clang)
                    .f64("pg_s", r.pg)
                    .f64("pg_opt_s", r.pg_opt)
                    .f64("speedup_pg", r.clang / r.pg)
                    .f64("speedup_pg_opt", r.clang / r.pg_opt)
                    .finish(),
            );
            out.push('\n');
        }
        out
    }

    /// Tuning-engine throughput rows (`BENCH_tune.json` baseline):
    /// candidates/sec serial vs parallel plus the cache hit rate, so later
    /// engine changes have a perf trajectory to compare against.
    pub fn tune_throughput_lines(rows: &[TuneThroughputRow]) -> String {
        let mut out = String::new();
        for r in rows {
            out.push_str(
                &JsonObject::new()
                    .str("figure", "tune_throughput")
                    .str("app", &r.app)
                    .u64("candidates", r.candidates as u64)
                    .u64("parallelism", r.parallelism as u64)
                    .f64("serial_s", r.serial_seconds)
                    .f64("parallel_s", r.parallel_seconds)
                    .f64("candidates_per_sec_serial", r.serial_rate())
                    .f64("candidates_per_sec_parallel", r.parallel_rate())
                    .f64("speedup", r.speedup())
                    .f64("cache_hit_rate", r.cache_hit_rate)
                    .f64("cold_cache_s", r.cold_cache_seconds)
                    .f64("warm_cache_s", r.warm_cache_seconds)
                    .f64("warm_speedup", r.warm_speedup())
                    .u64("warm_persistent_hits", r.warm_persistent_hits as u64)
                    .f64("serial_prepare_s", r.serial_timings.prepare_seconds)
                    .f64("serial_compile_s", r.serial_timings.compile_seconds)
                    .f64("serial_measure_s", r.serial_timings.measure_seconds)
                    .f64(
                        "serial_pool_overhead_s",
                        r.serial_timings.pool_overhead_seconds,
                    )
                    .f64("parallel_prepare_s", r.parallel_timings.prepare_seconds)
                    .f64("parallel_compile_s", r.parallel_timings.compile_seconds)
                    .f64("parallel_measure_s", r.parallel_timings.measure_seconds)
                    .f64(
                        "parallel_pool_overhead_s",
                        r.parallel_timings.pool_overhead_seconds,
                    )
                    .u64("dedup_candidates", r.dedup_candidates as u64)
                    .u64("dedup_unique", r.dedup_unique as u64)
                    .f64("dedup_cache_hit_rate", r.dedup_cache_hit_rate)
                    .finish(),
            );
            out.push('\n');
        }
        out
    }

    /// Interpreter-throughput rows (`BENCH_interp.json` baseline):
    /// warp-level issues per host second, scalar vs warp-vectorized, so
    /// interpreter changes have a perf trajectory to compare against.
    pub fn interp_throughput_lines(rows: &[InterpThroughputRow]) -> String {
        let mut out = String::new();
        for r in rows {
            out.push_str(
                &JsonObject::new()
                    .str("figure", "interp_throughput")
                    .str("app", &r.app)
                    .u64("total_issues", r.total_issues)
                    .f64("scalar_s", r.scalar_seconds)
                    .f64("warp_s", r.warp_seconds)
                    .f64("scalar_ops_per_sec", r.scalar_ops_per_sec())
                    .f64("warp_ops_per_sec", r.warp_ops_per_sec())
                    .f64("speedup", r.speedup())
                    .finish(),
            );
            out.push('\n');
        }
        out
    }

    /// Fig. 17 rows: cross-vendor composite comparison.
    pub fn fig17_lines(rows: &[(String, f64, f64, f64)]) -> String {
        let mut out = String::new();
        for (app, base, pg_a4000, pg_rx) in rows {
            out.push_str(
                &JsonObject::new()
                    .str("figure", "fig17")
                    .str("app", app)
                    .f64("a4000_clang_s", *base)
                    .f64("a4000_pg_s", *pg_a4000)
                    .f64("rx6800_pg_s", *pg_rx)
                    .f64("speedup_a4000_pg", base / pg_a4000)
                    .f64("speedup_rx6800_pg", base / pg_rx)
                    .finish(),
            );
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn pipelines_have_labels() {
        assert_eq!(Pipeline::Clang.label(), "clang");
        assert_eq!(Pipeline::PolygeistOpt.label(), "P-G opt");
    }

    #[test]
    fn lud_identity_config_measures() {
        let apps = all_apps_sized(Workload::Small);
        let lud = apps.iter().find(|a| a.name() == "lud").expect("registered");
        let t = targets::a100();
        let s = lud_config_seconds(lud.as_ref(), &t, respec::CoarsenConfig::identity());
        assert!(s.expect("runs") > 0.0);
    }

    #[test]
    fn strategy_best_never_exceeds_identity() {
        let apps = all_apps_sized(Workload::Small);
        let pf = apps
            .iter()
            .find(|a| a.name() == "pathfinder")
            .expect("registered");
        let t = targets::a100();
        let (identity, best) = strategy_best(pf.as_ref(), &t, Strategy::Combined, &[1, 2]);
        assert!(best <= identity);
        assert!(best.is_finite() && identity.is_finite());
    }

    fn assert_json_lines(lines: &str, figure: &str) {
        assert!(!lines.is_empty(), "{figure}: no output");
        for line in lines.lines() {
            respec::trace::json::validate(line)
                .unwrap_or_else(|e| panic!("{figure}: invalid JSON line {line:?}: {e}"));
            assert!(
                line.starts_with(&format!("{{\"figure\":\"{figure}\"")),
                "{figure}: missing discriminator in {line:?}"
            );
        }
    }

    #[test]
    fn json_lines_are_valid_for_every_experiment() {
        assert_json_lines(&jsonout::table1_lines(), "table1");

        let rows = fig13_data(Workload::Small, &[1, 2]);
        let lines = jsonout::fig13_lines(&rows);
        assert_json_lines(&lines, "fig13");
        assert_eq!(lines.lines().count(), rows.len());

        let blocks = [1i64, 2];
        let threads = [1i64, 2];
        let matrix = fig14_data(Workload::Small, &blocks, &threads);
        let lines = jsonout::grid_lines(
            "fig14",
            "block_total",
            "thread_total",
            &blocks,
            &threads,
            &matrix,
        );
        assert_json_lines(&lines, "fig14");
        assert_eq!(lines.lines().count(), blocks.len() * threads.len());

        let rows = table2_data(Workload::Small);
        assert_json_lines(&jsonout::table2_lines(&rows), "table2");
    }

    #[test]
    fn tuned_module_is_worker_count_invariant() {
        let apps = all_apps_sized(Workload::Small);
        let pf = apps
            .iter()
            .find(|a| a.name() == "pathfinder")
            .expect("registered");
        let t = targets::a100();
        let (serial, sr) = tuned_module_with(
            pf.as_ref(),
            &t,
            Strategy::Combined,
            &[1, 2],
            &TuneOptions::serial(),
        );
        let (parallel, pr) = tuned_module_with(
            pf.as_ref(),
            &t,
            Strategy::Combined,
            &[1, 2],
            &TuneOptions::with_parallelism(3),
        );
        let name = pf.main_kernel();
        assert_eq!(
            serial.function(name).unwrap().to_string(),
            parallel.function(name).unwrap().to_string()
        );
        let (sr, pr) = (sr.expect("tunes"), pr.expect("tunes"));
        assert_eq!(sr.best_config, pr.best_config);
        assert_eq!(sr.best_seconds.to_bits(), pr.best_seconds.to_bits());
    }

    #[test]
    fn tune_throughput_rows_are_json_clean() {
        let rows = tune_throughput_data(Workload::Small, &[1, 2], 2);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.candidates > 0);
            assert!(r.serial_seconds > 0.0 && r.parallel_seconds > 0.0);
            assert!((0.0..=1.0).contains(&r.cache_hit_rate));
            // The phase breakdown accounts for real work and never exceeds
            // the wall clock by more than the worker fan-out allows.
            assert!(r.serial_timings.wall_seconds > 0.0);
            assert!(r.serial_timings.prepare_seconds > 0.0);
            assert!(r.serial_timings.measure_seconds > 0.0);
            assert!(r.serial_timings.pool_overhead_seconds >= 0.0);
            assert!(r.parallel_timings.wall_seconds > 0.0);
            // The dedup-visible sweep hits the in-run cache by construction.
            assert!(r.dedup_candidates > r.dedup_unique);
            assert!(r.dedup_cache_hit_rate > 0.0);
        }
        assert_json_lines(&jsonout::tune_throughput_lines(&rows), "tune_throughput");
    }

    #[test]
    fn interp_throughput_rows_are_json_clean() {
        let rows = interp_throughput_data(Workload::Small, 1);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.total_issues > 0, "{} executed no instructions", r.app);
            assert!(r.scalar_seconds > 0.0 && r.warp_seconds > 0.0);
            assert!(r.scalar_ops_per_sec() > 0.0 && r.warp_ops_per_sec() > 0.0);
        }
        assert_json_lines(
            &jsonout::interp_throughput_lines(&rows),
            "interp_throughput",
        );
    }

    #[test]
    fn bench_compare_diffs_baselines_by_app() {
        let old = concat!(
            "{\"figure\":\"tune_throughput\",\"app\":\"lud\",\"serial_s\":2.0,\"parallel_s\":1.0}\n",
            "{\"figure\":\"tune_throughput\",\"app\":\"nw\",\"serial_s\":4.0,\"parallel_s\":2.0}\n",
            "{\"figure\":\"tune_throughput\",\"app\":\"gone\",\"serial_s\":1.0,\"parallel_s\":1.0}\n",
        );
        let new = concat!(
            "{\"figure\":\"tune_throughput\",\"app\":\"lud\",\"serial_s\":1.0,\"parallel_s\":0.5}\n",
            "{\"figure\":\"tune_throughput\",\"app\":\"nw\",\"serial_s\":8.0,\"parallel_s\":4.0}\n",
            "{\"figure\":\"fig13\",\"app\":\"lud\",\"thread_only\":1.0}\n",
        );
        let deltas = bench_compare(old, new).unwrap();
        assert_eq!(deltas.len(), 2, "only apps present in both baselines");
        assert_eq!(deltas[0].app, "lud");
        assert!((deltas[0].serial_speedup() - 2.0).abs() < 1e-12);
        assert!((deltas[0].parallel_speedup() - 2.0).abs() < 1e-12);
        assert_eq!(deltas[1].app, "nw");
        assert!((deltas[1].serial_speedup() - 0.5).abs() < 1e-12);
        // Malformed input is an error, not a panic.
        assert!(bench_compare("not json", new).is_err());
        assert!(bench_compare(old, "").is_err());
    }
}
