//! Regenerates `BENCH_fatbin.json`: the fat-binary coverage experiment —
//! all 15 Rodinia apps plus `gemm`, each cold-tuned on the six registry
//! targets into one persistent cache, mined for the minimal ε-cover variant
//! set, and dispatched back onto every target.
//!
//! Flags: `--large` for paper-scale workloads, `--json` for one JSON object
//! per row on stdout, `--totals a,b,c` to override the coarsening-totals
//! ladder, `--epsilons a,b,c` for the slowdown budgets (fractions, default
//! `0.01,0.05,0.10`), `--cache-dir PATH` to mine against a persistent
//! directory instead of a throwaway one, and `--assert-compression N` to
//! exit nonzero unless the ε=5% variant set is strictly smaller than the
//! target count for at least `N` workloads (the CI gate).
use respec_rodinia::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let workload = if args.iter().any(|a| a == "--large") {
        Workload::Large
    } else {
        Workload::Small
    };
    let totals: Vec<i64> = flag_value("--totals")
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("--totals takes integers"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4]);
    let epsilons: Vec<f64> = flag_value("--epsilons")
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("--epsilons takes fractions"))
                .collect()
        })
        .unwrap_or_else(|| vec![0.01, 0.05, 0.10]);
    let options = respec::TuneOptions::from_env().expect("invalid RESPEC_* environment");
    let rows = match flag_value("--cache-dir") {
        Some(dir) => respec_bench::fatbin_data_in(
            std::path::Path::new(dir),
            workload,
            &totals,
            &epsilons,
            &options,
        ),
        None => respec_bench::fatbin_data(workload, &totals, &epsilons, &options),
    };
    if args.iter().any(|a| a == "--json") {
        print!("{}", respec_bench::jsonout::fatbin_lines(&rows));
        print!("{}", respec_bench::jsonout::fatbin_dispatch_lines(&rows));
    } else {
        respec_bench::print_fatbin(&rows);
    }
    if let Some(min) = flag_value("--assert-compression") {
        let min: usize = min.parse().expect("--assert-compression takes a count");
        let at_5 = rows
            .iter()
            .filter(|r| (r.epsilon - 0.05).abs() < 1e-9 && r.compressed())
            .count();
        let workloads = rows
            .iter()
            .filter(|r| (r.epsilon - 0.05).abs() < 1e-9)
            .count();
        if at_5 < min {
            eprintln!(
                "fatbin_coverage: only {at_5}/{workloads} workloads compress below the \
                 target count at epsilon=5% (required {min})"
            );
            std::process::exit(1);
        }
        eprintln!(
            "fatbin_coverage: {at_5}/{workloads} workloads compress at epsilon=5% \
             (required {min})"
        );
    }
}
