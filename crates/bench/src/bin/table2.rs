//! Regenerates Table II: lud profiling counters at (1,1), (4,1), (1,4).
//! Defaults to the Large workload; pass `--small` for a quick run, `--json`
//! for one JSON object per configuration on stdout instead of the table.
use respec_rodinia::Workload;

fn main() {
    let workload = if std::env::args().any(|a| a == "--small") {
        Workload::Small
    } else {
        Workload::Large
    };
    if std::env::args().any(|a| a == "--json") {
        let rows = respec_bench::table2_data(workload);
        print!("{}", respec_bench::jsonout::table2_lines(&rows));
    } else {
        respec_bench::table2(workload);
    }
}
