//! Regenerates Table II: lud profiling counters at (1,1), (4,1), (1,4).
//! Defaults to the Large workload; pass `--small` for a quick run.
use respec_rodinia::Workload;

fn main() {
    let workload = if std::env::args().any(|a| a == "--small") {
        Workload::Small
    } else {
        Workload::Large
    };
    respec_bench::table2(workload);
}
