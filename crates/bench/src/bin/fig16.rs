//! Regenerates Fig. 16: Rodinia composite comparison of clang vs
//! Polygeist-GPU (no-opt / opt) on the NVIDIA and AMD targets.
//! Pass `--large` for the paper-scale workloads (slower).
use respec::targets;
use respec_rodinia::Workload;

fn main() {
    let workload = if std::env::args().any(|a| a == "--large") {
        Workload::Large
    } else {
        Workload::Small
    };
    let totals = [1, 2, 4, 8];
    let ts = [targets::a4000(), targets::a100(), targets::rx6800(), targets::mi210()];
    respec_bench::fig16(workload, &ts, &totals);
}
