//! Regenerates Fig. 16: Rodinia composite comparison of clang vs
//! Polygeist-GPU (no-opt / opt) on the NVIDIA and AMD targets.
//! Pass `--large` for the paper-scale workloads (slower); `--json` for one
//! JSON object per row on stdout instead of the tables. TDO searches run on
//! the parallel tuning engine; `--serial` forces one worker (the numbers
//! are identical either way — only the wall clock changes).
use respec::targets;
use respec_rodinia::Workload;

fn main() {
    if std::env::args().any(|a| a == "--serial") {
        std::env::set_var("RESPEC_TUNE_PARALLELISM", "1");
    }
    let workload = if std::env::args().any(|a| a == "--large") {
        Workload::Large
    } else {
        Workload::Small
    };
    let totals = [1, 2, 4, 8];
    let ts = [
        targets::a4000(),
        targets::a100(),
        targets::rx6800(),
        targets::mi210(),
    ];
    if std::env::args().any(|a| a == "--json") {
        let rows = respec_bench::fig16_data(workload, &ts, &totals);
        print!("{}", respec_bench::jsonout::fig16_lines(&rows));
    } else {
        respec_bench::fig16(workload, &ts, &totals);
    }
}
