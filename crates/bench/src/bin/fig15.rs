//! Regenerates Fig. 15: lud, block coarsening in x only × thread totals.
//! Defaults to the Large workload; pass `--small` for a quick run, `--json`
//! for one JSON object per grid cell on stdout instead of the table.
use respec_rodinia::Workload;

fn main() {
    let workload = if std::env::args().any(|a| a == "--small") {
        Workload::Small
    } else {
        Workload::Large
    };
    let block_x = [1i64, 2, 3, 4, 6, 8, 9, 12];
    let threads = [1i64, 2, 4, 8];
    if std::env::args().any(|a| a == "--json") {
        let matrix = respec_bench::fig15_data(workload, &block_x, &threads);
        print!(
            "{}",
            respec_bench::jsonout::grid_lines(
                "fig15",
                "block_x",
                "thread_total",
                &block_x,
                &threads,
                &matrix
            )
        );
    } else {
        respec_bench::fig15(workload, &block_x, &threads);
    }
}
