//! Regenerates Fig. 17: A4000 (clang) vs A4000 (P-G) vs RX6800 (P-G).
//! Pass `--large` for the paper-scale workloads (slower); `--json` for one
//! JSON object per row on stdout instead of the table. TDO searches run on
//! the parallel tuning engine; `--serial` forces one worker (the numbers
//! are identical either way — only the wall clock changes).
use respec_rodinia::Workload;

fn main() {
    if std::env::args().any(|a| a == "--serial") {
        std::env::set_var("RESPEC_TUNE_PARALLELISM", "1");
    }
    let workload = if std::env::args().any(|a| a == "--large") {
        Workload::Large
    } else {
        Workload::Small
    };
    let totals = [1, 2, 4, 8];
    if std::env::args().any(|a| a == "--json") {
        let rows = respec_bench::fig17_data(workload, &totals);
        print!("{}", respec_bench::jsonout::fig17_lines(&rows));
    } else {
        respec_bench::fig17(workload, &totals);
    }
}
