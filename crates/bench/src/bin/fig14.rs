//! Regenerates Fig. 14: lud speedup over the (block, thread) factor grid.
//! Defaults to the Large workload; pass `--small` for a quick run, `--json`
//! for one JSON object per grid cell on stdout instead of the table.
use respec_rodinia::Workload;

fn main() {
    let workload = if std::env::args().any(|a| a == "--small") {
        Workload::Small
    } else {
        Workload::Large
    };
    let blocks = [1i64, 2, 4, 7, 8, 16, 26, 32];
    let threads = [1i64, 2, 4, 8, 16, 32];
    if std::env::args().any(|a| a == "--json") {
        let matrix = respec_bench::fig14_data(workload, &blocks, &threads);
        print!(
            "{}",
            respec_bench::jsonout::grid_lines(
                "fig14",
                "block_total",
                "thread_total",
                &blocks,
                &threads,
                &matrix
            )
        );
    } else {
        respec_bench::fig14(workload, &blocks, &threads);
    }
}
