//! Regenerates Fig. 14: lud speedup over the (block, thread) factor grid.
//! Defaults to the Large workload; pass `--small` for a quick run.
use respec_rodinia::Workload;

fn main() {
    let workload = if std::env::args().any(|a| a == "--small") {
        Workload::Small
    } else {
        Workload::Large
    };
    let blocks = [1i64, 2, 4, 7, 8, 16, 26, 32];
    let threads = [1i64, 2, 4, 8, 16, 32];
    respec_bench::fig14(workload, &blocks, &threads);
}
