//! Regenerates `BENCH_cpu.json`: every Rodinia app autotuned for the
//! simulated CPU targets (and the A100 for contrast) through the unchanged
//! tuning entry path. Pass `--large` for paper-scale workloads, `--json`
//! for one JSON object per row on stdout instead of the table, and
//! `--totals a,b,c` to override the coarsening-totals ladder.
use respec_rodinia::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = if args.iter().any(|a| a == "--large") {
        Workload::Large
    } else {
        Workload::Small
    };
    let totals: Vec<i64> = args
        .iter()
        .position(|a| a == "--totals")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("--totals takes integers"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4]);
    if args.iter().any(|a| a == "--json") {
        let rows = respec_bench::cpu_tune_data(workload, &totals);
        print!("{}", respec_bench::jsonout::cpu_tune_lines(&rows));
    } else {
        respec_bench::cpu_tune(workload, &totals);
    }
}
