//! Diffs two `BENCH_tune.json` baselines: per-app old-over-new speedup of
//! the serial and parallel tuning searches, with a geomean footer.
//!
//! ```text
//! cargo run -p respec-bench --bin bench_compare -- OLD.json NEW.json
//! ```
//!
//! Typical use: stash the committed `BENCH_tune.json`, regenerate it with
//! `cargo bench --bench tune_throughput -- --json`, then compare the two.

use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (old_path, new_path) = match (args.get(1), args.get(2)) {
        (Some(o), Some(n)) => (o, n),
        _ => {
            eprintln!("usage: bench_compare <old BENCH_tune.json> <new BENCH_tune.json>");
            exit(2);
        }
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_compare: cannot read {path}: {e}");
            exit(2);
        })
    };
    let old = read(old_path);
    let new = read(new_path);
    match respec_bench::bench_compare(&old, &new) {
        Ok(deltas) => respec_bench::print_bench_compare(&deltas),
        Err(e) => {
            eprintln!("bench_compare: {e}");
            exit(1);
        }
    }
}
