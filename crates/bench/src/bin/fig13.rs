//! Regenerates Fig. 13: combined vs thread-only vs block-only coarsening.
//! Pass `--large` for the paper-scale workloads (slower).
use respec_rodinia::Workload;

fn main() {
    let workload = if std::env::args().any(|a| a == "--large") {
        Workload::Large
    } else {
        Workload::Small
    };
    let totals = [1, 2, 4, 8, 16, 32];
    respec_bench::fig13(workload, &totals);
}
