//! Regenerates Table I (GPU specifications).
fn main() {
    respec_bench::table1();
}
