//! Regenerates Table I (GPU specifications). Pass `--json` for one JSON
//! object per target on stdout instead of the table.
fn main() {
    if std::env::args().any(|a| a == "--json") {
        print!("{}", respec_bench::jsonout::table1_lines());
    } else {
        respec_bench::table1();
    }
}
