//! Regenerates every table and figure of the paper's evaluation at reduced
//! scale, as part of `cargo bench`. For paper-scale runs use the dedicated
//! binaries (`cargo run --release -p respec-bench --bin fig13 -- --large`).

use respec::targets;
use respec_rodinia::Workload;

fn main() {
    let quick_totals = [1i64, 2, 4];

    respec_bench::table1();
    respec_bench::fig13(Workload::Small, &quick_totals);
    respec_bench::fig14(Workload::Small, &[1, 2, 4, 7], &[1, 2, 4]);
    respec_bench::table2(Workload::Small);
    respec_bench::fig15(Workload::Small, &[1, 2, 4], &[1, 2, 4]);
    respec_bench::fig16(
        Workload::Small,
        &[targets::a4000(), targets::rx6800()],
        &quick_totals,
    );
    respec_bench::fig17(Workload::Small, &quick_totals);
}
