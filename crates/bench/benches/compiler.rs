//! Criterion benchmarks of the compiler itself: frontend, coarsening,
//! cleanup passes, backend register estimation, and simulated execution.

use criterion::{criterion_group, criterion_main, Criterion};
use respec::opt::{coarsen_function, optimize, CoarsenConfig};
use respec::{targets, Compiler, GpuSim, KernelArg};
use respec_rodinia::{all_apps, compile_app};

const KERNEL: &str = r#"
#define BS 16
__global__ void tile_mul(float* c, float* a, float* b, int n) {
    __shared__ float ta[BS][BS];
    __shared__ float tb[BS][BS];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    int col = blockIdx.x * BS + tx;
    int row = blockIdx.y * BS + ty;
    float acc = 0.0f;
    for (int m = 0; m < n / BS; m++) {
        ta[ty][tx] = a[row * n + m * BS + tx];
        tb[ty][tx] = b[(m * BS + ty) * n + col];
        __syncthreads();
        for (int k = 0; k < BS; k++) {
            acc += ta[ty][k] * tb[k][tx];
        }
        __syncthreads();
    }
    c[row * n + col] = acc;
}
"#;

fn compiled() -> respec::Compiled {
    Compiler::new()
        .source(KERNEL)
        .kernel("tile_mul", [16, 16, 1])
        .target(targets::a100())
        .optimizer(false)
        .compile()
        .expect("compiles")
}

fn bench_frontend(c: &mut Criterion) {
    c.bench_function("frontend/compile_tile_mul", |b| {
        b.iter(|| {
            std::hint::black_box(compiled());
        })
    });
    c.bench_function("frontend/compile_all_rodinia", |b| {
        b.iter(|| {
            for app in all_apps() {
                std::hint::black_box(compile_app(app.as_ref()).expect("compiles"));
            }
        })
    });
}

fn bench_transforms(c: &mut Criterion) {
    let base = compiled();
    c.bench_function("opt/coarsen_2x2", |b| {
        b.iter(|| {
            let mut f = base.kernel("tile_mul").clone();
            coarsen_function(
                &mut f,
                CoarsenConfig {
                    block: [2, 1, 1],
                    thread: [2, 1, 1],
                },
            )
            .expect("legal");
            std::hint::black_box(f);
        })
    });
    c.bench_function("opt/coarsen_7_with_epilogue", |b| {
        b.iter(|| {
            let mut f = base.kernel("tile_mul").clone();
            coarsen_function(
                &mut f,
                CoarsenConfig {
                    block: [7, 1, 1],
                    thread: [1, 1, 1],
                },
            )
            .expect("legal");
            std::hint::black_box(f);
        })
    });
    let mut coarse = base.kernel("tile_mul").clone();
    coarsen_function(
        &mut coarse,
        CoarsenConfig {
            block: [2, 1, 1],
            thread: [4, 1, 1],
        },
    )
    .expect("legal");
    c.bench_function("opt/cleanup_pipeline", |b| {
        b.iter(|| {
            let mut f = coarse.clone();
            std::hint::black_box(optimize(&mut f));
        })
    });
}

fn bench_backend(c: &mut Criterion) {
    let base = compiled();
    let func = base.kernel("tile_mul").clone();
    let launch = respec::ir::kernel::analyze_function(&func)
        .expect("kernel shape")
        .remove(0);
    c.bench_function("backend/register_estimate", |b| {
        b.iter(|| {
            std::hint::black_box(respec::backend::compile_launch(&func, &launch, 255));
        })
    });
    c.bench_function("ir/print_parse_round_trip", |b| {
        b.iter(|| {
            let text = func.to_string();
            std::hint::black_box(respec::ir::parse_function(&text).expect("parses"));
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let base = compiled();
    let func = base.kernel("tile_mul").clone();
    let n = 128usize;
    c.bench_function("sim/tile_mul_128", |b| {
        b.iter(|| {
            let mut sim = GpuSim::new(targets::a100());
            let a = sim.mem.alloc_f32(&vec![1.0; n * n]);
            let bb = sim.mem.alloc_f32(&vec![2.0; n * n]);
            let cc = sim.mem.alloc_f32(&vec![0.0; n * n]);
            let g = (n / 16) as i64;
            sim.launch(
                &func,
                [g, g, 1],
                &[
                    KernelArg::Buf(cc),
                    KernelArg::Buf(a),
                    KernelArg::Buf(bb),
                    KernelArg::I32(n as i32),
                ],
                32,
            )
            .expect("launches");
            std::hint::black_box(sim.elapsed_seconds);
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_frontend, bench_transforms, bench_backend, bench_simulator
);
criterion_main!(benches);
