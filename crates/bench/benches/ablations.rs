//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. *Indexing style* (Fig. 11 of the paper): coalescing-friendly strided
//!    thread-coarsening indexing vs naive contiguous indexing.
//! 2. *Epilogue kernels* (§V-C): divisor-only block factors vs arbitrary
//!    factors (including the primes the paper found optimal).
//! 3. *Occupancy feedback*: how register pressure degrades the latency
//!    bound — the reason the spill filter exists.
//! 4. *Parallel-representation LICM* (§VII-C): the lavaMD effect.

use respec::ir::kernel::analyze_function;
use respec::opt::{optimize, unroll_interleave, CoarsenConfig, IndexingStyle};
use respec::{targets, Compiler, GpuSim, KernelArg};
use respec_bench::{composite_seconds, lud_config_seconds, Pipeline};
use respec_rodinia::{all_apps_sized, Workload};

const COALESCED: &str = r#"
__global__ void copy_scale(float* out, float* in) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    out[i] = in[i] * 2.0f;
}
"#;

fn indexing_ablation() {
    println!("== ablation 1: thread-coarsening indexing style (Fig. 11) ==");
    let n = 1 << 16;
    let mut results = Vec::new();
    for (label, style) in [
        ("strided (coalescing-friendly)", IndexingStyle::Strided),
        ("contiguous (naive)", IndexingStyle::Contiguous),
    ] {
        let compiled = Compiler::new()
            .source(COALESCED)
            .kernel("copy_scale", [256, 1, 1])
            .target(targets::a100())
            .optimizer(false)
            .compile()
            .expect("compiles");
        let mut func = compiled.kernel("copy_scale").clone();
        let launch = analyze_function(&func).expect("kernel shape").remove(0);
        unroll_interleave(&mut func, launch.thread_par, [4, 1, 1], style).expect("legal");
        optimize(&mut func);
        let mut sim = GpuSim::new(targets::a100());
        let src = sim.mem.alloc_f32(&vec![1.0; n]);
        let dst = sim.mem.alloc_f32(&vec![0.0; n]);
        let report = sim
            .launch(
                &func,
                [(n / 256) as i64, 1, 1],
                &[KernelArg::Buf(dst), KernelArg::Buf(src)],
                32,
            )
            .expect("launches");
        println!(
            "  {label:<32} read sectors {:>8}  load requests {:>8}  time {:>8.2} µs",
            report.stats.read_sectors,
            report.stats.global_load_requests,
            report.kernel_seconds * 1e6
        );
        results.push(report.stats.read_sectors);
    }
    assert!(
        results[0] <= results[1],
        "strided indexing must not read more sectors than contiguous"
    );
    println!();
}

fn epilogue_ablation() {
    println!("== ablation 2: divisor-only vs arbitrary block factors (epilogue kernels, §V-C) ==");
    let apps = all_apps_sized(Workload::Large);
    let lud = apps
        .iter()
        .find(|a| a.name() == "lud")
        .expect("lud registered");
    let target = targets::a4000();
    let measure = |factors: &[i64]| -> (i64, f64) {
        let mut best = (1, f64::INFINITY);
        for &f in factors {
            if let Some(s) = lud_config_seconds(
                lud.as_ref(),
                &target,
                CoarsenConfig {
                    block: [f, 1, 1],
                    thread: [1, 1, 1],
                },
            ) {
                if s < best.1 {
                    best = (f, s);
                }
            }
        }
        best
    };
    // Power-of-two ladder (what divisor-restricted coarsening can reach on
    // a dynamic grid) vs every factor (epilogue kernels make them legal).
    let (df, dt) = measure(&[1, 2, 4, 8]);
    let (af, at) = measure(&[1, 2, 3, 4, 5, 6, 7, 8]);
    println!("  divisor-ladder best : factor {df} at {:.2} µs", dt * 1e6);
    println!("  arbitrary best      : factor {af} at {:.2} µs", at * 1e6);
    assert!(
        at <= dt,
        "the richer factor set can only improve the optimum"
    );
    println!();
}

const LATENCY_KERNEL: &str = r#"
__global__ void gather_chain(float* out, float* in, int* idx, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        float acc = 0.0f;
        int p = i;
        for (int k = 0; k < 16; k++) {
            p = idx[p];
            acc = acc + in[p];
        }
        out[i] = acc;
    }
}
"#;

fn occupancy_ablation() {
    println!("== ablation 3: register pressure vs latency hiding (spill-filter rationale) ==");
    // A dependent gather chain: time is latency-bound, so resident-warp
    // count (set by register pressure) directly controls it.
    let compiled = Compiler::new()
        .source(LATENCY_KERNEL)
        .kernel("gather_chain", [256, 1, 1])
        .target(targets::a100())
        .compile()
        .expect("compiles");
    let func = compiled.kernel("gather_chain").clone();
    let n = 1 << 15;
    // A scattered permutation so every hop misses coalescing and caches.
    let perm: Vec<i32> = (0..n)
        .map(|i| ((i as i64 * 7919 + 13) % n as i64) as i32)
        .collect();
    let mut times = Vec::new();
    for regs in [32u32, 128, 255] {
        let mut sim = GpuSim::new(targets::a100());
        let src = sim.mem.alloc_f32(&vec![1.0; n]);
        let idx = sim.mem.alloc_i32(&perm);
        let dst = sim.mem.alloc_f32(&vec![0.0; n]);
        let report = sim
            .launch(
                &func,
                [(n / 256) as i64, 1, 1],
                &[
                    KernelArg::Buf(dst),
                    KernelArg::Buf(src),
                    KernelArg::Buf(idx),
                    KernelArg::I32(n as i32),
                ],
                regs,
            )
            .expect("launches");
        println!(
            "  {regs:>3} regs/thread: occupancy {:>3.0}% (limiter: {}), exposed latency {:>9.0} cycles, time {:>8.2} µs",
            report.occupancy.occupancy * 100.0,
            report.occupancy.limiter,
            report.timing.latency_cycles,
            report.kernel_seconds * 1e6
        );
        times.push(report.timing.latency_cycles);
    }
    assert!(
        times[2] >= 1.8 * times[0],
        "register pressure must shrink resident warps and expose latency (the spill-filter rationale)"
    );
    println!();
}

fn licm_ablation() {
    println!("== ablation 4: parallel-representation LICM (the lavaMD effect, §VII-C) ==");
    // Shared-memory request counts drop when the legacy kernel's redundant
    // inner-loop loads are hoisted; on fp64-light targets this also shows
    // up as time.
    let apps = all_apps_sized(Workload::Small);
    let lavamd = apps
        .iter()
        .find(|a| a.name() == "lavaMD")
        .expect("registered");
    let target = targets::a100();
    let mut shared_reads = Vec::new();
    for pipeline in [Pipeline::Clang, Pipeline::PolygeistNoOpt] {
        let module = respec_bench::compiled_module(lavamd.as_ref(), pipeline);
        let mut sim = GpuSim::new(target.clone());
        lavamd.run(&mut sim, &module).expect("runs");
        let stats = sim.total_stats();
        println!(
            "  lavaMD {:<8} shared reads {:>10}  composite {:.3e} s",
            pipeline.label(),
            stats.shared_read_requests,
            sim.elapsed_seconds
        );
        shared_reads.push(stats.shared_read_requests);
    }
    assert!(
        shared_reads[1] < shared_reads[0],
        "LICM must hoist the legacy kernel's redundant shared loads"
    );
    let name = "srad_v1";
    let app = apps.iter().find(|a| a.name() == name).expect("registered");
    let clang = composite_seconds(app.as_ref(), &target, Pipeline::Clang, &[1]);
    let pg = composite_seconds(app.as_ref(), &target, Pipeline::PolygeistNoOpt, &[1]);
    println!(
        "  {name:<10} clang {:.3e} s   P-G {:.3e} s   ratio {:.3}x",
        clang,
        pg,
        clang / pg
    );
    println!();
}

fn main() {
    indexing_ablation();
    epilogue_ablation();
    occupancy_ablation();
    licm_ablation();
}
