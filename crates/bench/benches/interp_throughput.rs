//! Interpreter throughput microbenchmark: warp-level instruction issues
//! retired per host second, scalar vs warp-vectorized execution, per
//! Rodinia app. Both modes execute the identical instruction stream (the
//! counters are part of the equivalence contract), so the speedup column
//! isolates the interpreter's own dispatch cost.
//!
//! Run with `cargo bench --bench interp_throughput`. Pass `--json` to
//! also write the machine-readable baseline to `BENCH_interp.json`;
//! `--large` uses paper-scale workloads, `--repeats N` averages over N
//! timed runs per mode (default 3, after one untimed warm-up).

use respec_rodinia::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = if args.iter().any(|a| a == "--large") {
        Workload::Large
    } else {
        Workload::Small
    };
    let repeats = args
        .iter()
        .position(|a| a == "--repeats")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    let rows = respec_bench::interp_throughput_data(workload, repeats);

    println!("== interp_throughput: warp-level issues per host second ==");
    println!(
        "{:<16} {:>12} {:>14} {:>14} {:>10}",
        "app", "issues", "scalar ops/s", "warp ops/s", "speedup"
    );
    for r in &rows {
        println!(
            "{:<16} {:>12} {:>14.0} {:>14.0} {:>9.2}x",
            r.app,
            r.total_issues,
            r.scalar_ops_per_sec(),
            r.warp_ops_per_sec(),
            r.speedup(),
        );
    }
    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup()).collect();
    println!("geomean speedup: {:.2}x", respec_bench::geomean(&speedups));

    if args.iter().any(|a| a == "--json") {
        // cargo runs benches with the package directory as cwd; anchor the
        // baseline at the workspace root so successive PRs overwrite one file.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .join("BENCH_interp.json");
        let lines = respec_bench::jsonout::interp_throughput_lines(&rows);
        std::fs::write(&path, &lines).expect("write BENCH_interp.json");
        println!("\nwrote {} ({} rows)", path.display(), rows.len());
    }
}
