//! Tuning-engine throughput baseline: wall-clock of a full Combined-strategy
//! search per Rodinia app, serial vs parallel, plus the compilation-cache
//! hit rate.
//!
//! Run with `cargo bench --bench tune_throughput`. Pass `--json` to also
//! write the machine-readable baseline to `BENCH_tune.json` (one JSON object
//! per app) so future engine changes have a perf trajectory to compare
//! against; `--large` uses paper-scale workloads, `--parallelism N`
//! overrides the default of 4 workers.

use respec_rodinia::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = if args.iter().any(|a| a == "--large") {
        Workload::Large
    } else {
        Workload::Small
    };
    let parallelism = args
        .iter()
        .position(|a| a == "--parallelism")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let totals = [1, 2, 4, 8];

    let rows = respec_bench::tune_throughput_data(workload, &totals, parallelism);

    println!("== tune_throughput: Combined-strategy search, serial vs parallel({parallelism}) ==");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "app", "cands", "serial c/s", "par c/s", "speedup", "hit rate", "serial(s)", "dedup hit"
    );
    for r in &rows {
        println!(
            "{:<16} {:>10} {:>12.1} {:>12.1} {:>9.2}x {:>9.0}% {:>10.3} {:>9.0}%",
            r.app,
            r.candidates,
            r.serial_rate(),
            r.parallel_rate(),
            r.speedup(),
            r.cache_hit_rate * 100.0,
            r.serial_seconds,
            r.dedup_cache_hit_rate * 100.0,
        );
    }

    println!("\n== per-phase breakdown of the serial search (busy seconds) ==");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "app", "prepare", "compile", "measure", "overhead", "wall"
    );
    for r in &rows {
        let t = &r.serial_timings;
        println!(
            "{:<16} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            r.app,
            t.prepare_seconds,
            t.compile_seconds,
            t.measure_seconds,
            t.pool_overhead_seconds,
            t.wall_seconds,
        );
    }

    if args.iter().any(|a| a == "--json") {
        // cargo runs benches with the package directory as cwd; anchor the
        // baseline at the workspace root so successive PRs overwrite one file.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .join("BENCH_tune.json");
        let lines = respec_bench::jsonout::tune_throughput_lines(&rows);
        std::fs::write(&path, &lines).expect("write BENCH_tune.json");
        println!("\nwrote {} ({} rows)", path.display(), rows.len());
    }
}
