//! Property tests for fat-binary variant selection: for arbitrary winner
//! matrices the greedy set must always honor the ε bound on every covered
//! target, never exceed the target count, and degenerate to one variant
//! per distinct winner at ε = 0.

use proptest::prelude::*;
use respec_cache::fatbin::select_variants;

/// Random winner matrix: `variants × targets` of positive times, with a
/// sprinkle of `INFINITY` cells (configurations that cannot run on a
/// target) — but never an all-infinite column, so every target stays
/// coverable.
fn matrix_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..8, 1usize..7, any::<u64>()).prop_map(|(variants, targets, seed)| {
        let mut rng = TestRng::new(seed);
        (0..variants)
            .map(|v| {
                (0..targets)
                    .map(|t| {
                        // Column t is guaranteed one finite row (v == t % variants).
                        if v != t % variants && rng.below(5) == 0 {
                            f64::INFINITY
                        } else {
                            1e-6 + rng.unit_f64()
                        }
                    })
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn greedy_set_honors_the_epsilon_bound(
        matrix in matrix_strategy(),
        epsilon in 0.0f64..0.5,
    ) {
        let s = select_variants(&matrix, epsilon).expect("well-formed matrix");
        let targets = matrix[0].len();
        prop_assert_eq!(s.assignment.len(), targets);
        prop_assert_eq!(s.best.len(), targets);
        // Indexes assignment, best and the matrix in lockstep.
        #[allow(clippy::needless_range_loop)]
        for t in 0..targets {
            let best = s.best[t];
            prop_assert!(best.is_finite(), "every column has a finite row");
            let v = s.assignment[t].expect("coverable targets get a variant");
            prop_assert!(
                s.chosen.contains(&v),
                "assignment must reference a chosen variant"
            );
            let got = matrix[v][t];
            prop_assert!(
                got <= best * (1.0 + epsilon),
                "target {t}: assigned time {got} exceeds budget {} (best {best}, eps {epsilon})",
                best * (1.0 + epsilon)
            );
        }
    }

    #[test]
    fn greedy_set_never_exceeds_the_target_count(
        matrix in matrix_strategy(),
        epsilon in 0.0f64..0.5,
    ) {
        let s = select_variants(&matrix, epsilon).expect("well-formed matrix");
        let targets = matrix[0].len();
        prop_assert!(
            s.chosen.len() <= targets,
            "{} variants chosen for {} targets",
            s.chosen.len(),
            targets
        );
        prop_assert!(
            s.chosen.len() <= matrix.len(),
            "cannot choose more variants than were mined"
        );
        // Chosen indices are valid rows and pairwise distinct.
        let mut seen = s.chosen.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), s.chosen.len(), "no variant is chosen twice");
        prop_assert!(s.chosen.iter().all(|&v| v < matrix.len()));
    }

    #[test]
    fn zero_epsilon_degenerates_to_one_variant_per_distinct_winner(
        matrix in matrix_strategy(),
    ) {
        let s = select_variants(&matrix, 0.0).expect("well-formed matrix");
        let targets = matrix[0].len();
        // At ε = 0 only exact column optima cover, so each target's
        // assigned variant must *be* its optimum...
        #[allow(clippy::needless_range_loop)]
        for t in 0..targets {
            let v = s.assignment[t].expect("coverable");
            prop_assert_eq!(
                matrix[v][t].to_bits(),
                s.best[t].to_bits(),
                "target {}: at eps=0 the assigned variant must be the exact optimum",
                t
            );
        }
        // ...and the set size equals the number of distinct winner rows:
        // one variant per distinct column-argmin (sharing only when two
        // targets elect the same row).
        let mut winners: Vec<usize> = (0..targets)
            .map(|t| {
                (0..matrix.len())
                    .filter(|&v| matrix[v][t].to_bits() == s.best[t].to_bits())
                    .min_by(|&a, &b| a.cmp(&b))
                    .expect("finite column")
            })
            .collect();
        winners.sort_unstable();
        winners.dedup();
        // Random real-valued cells make duplicate times across rows
        // essentially impossible, so the distinct-argmin count is exact.
        prop_assert_eq!(
            s.chosen.len(),
            winners.len(),
            "eps=0 must pick exactly one variant per distinct winner"
        );
    }
}

#[test]
fn selection_is_deterministic_across_runs() {
    let matrix = vec![
        vec![1.0, 2.0, f64::INFINITY],
        vec![1.04, 2.04, 3.0],
        vec![9.0, 1.95, 2.9],
    ];
    let a = select_variants(&matrix, 0.05).unwrap();
    let b = select_variants(&matrix, 0.05).unwrap();
    assert_eq!(a, b);
}
