//! Persistent, content-addressed tuning cache.
//!
//! Timing-driven optimization re-pays the full compile+measure cost on
//! every invocation, yet its outputs are durable artifacts: a backend
//! report depends only on the (canonicalized) kernel IR and the target,
//! and a tuning winner depends only on the input IR, the target, and the
//! searched configuration set. "A Few Fit Most" makes the same point from
//! the transfer side — a handful of tuned variants covers many devices —
//! so winners are worth keeping *across* targets too, as warm-start hints
//! for retargeted searches.
//!
//! This crate is the on-disk half of that story. A [`TuningCache`] is a
//! directory of small, versioned, self-describing entries addressed by
//! content keys:
//!
//! * **Compile reports** ([`StoredReport`]) are keyed by
//!   `(target kind, structural IR hash of the prepared version, target
//!   fingerprint)` — plus the pipeline and hash-scheme versions recorded
//!   inside the entry.
//! * **Tuning winners** ([`StoredWinner`]) are keyed by
//!   `(target kind, structural IR hash of the *input* kernel, target
//!   fingerprint, search fingerprint)`, where the target kind is the
//!   family tag (`"gpu"` / `"cpu"`) and the search fingerprint digests the
//!   candidate configuration list and nothing else — deliberately
//!   *fault-plan-free*, so a chaos run and a clean run share entries.
//!
//! # Durability contract
//!
//! * **Writes are atomic**: entries are written to a temp file in the
//!   cache directory and `rename`d into place, so readers never observe a
//!   half-written entry and concurrent writers of the same key settle on
//!   one complete entry.
//! * **Reads are corruption-tolerant**: a truncated, garbled, or
//!   version-stale entry is a [`Lookup::Stale`] — morally a miss with a
//!   reason — never an error. A cache must not be able to fail a build.
//! * **Entries are versioned**: each records the on-disk format version,
//!   the structural-hash scheme version
//!   ([`respec_ir::STRUCTURAL_HASH_VERSION`]) and the pass-pipeline
//!   version ([`respec_opt::PIPELINE_VERSION`]). Bumping any of them
//!   invalidates old entries on read.
//!
//! The tuning engine (`respec-tune`) consults the cache before its
//! compile+measure phase and records hits/misses/invalidations in
//! `TuneStats`; the facade (`respec::Compiler::with_cache`) and the
//! `RESPEC_CACHE_DIR` environment variable wire a cache through the whole
//! pipeline.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use respec_backend::{BackendReport, KernelStats};
use respec_ir::{StableHasher, STRUCTURAL_HASH_VERSION};
use respec_opt::{CoarsenConfig, PIPELINE_VERSION};

pub mod fatbin;

/// On-disk entry format version (the `respec-cache-v<N>` header). Bump on
/// any change to the entry grammar.
///
/// v2 made every key target-**kind**-aware (`gpu`/`cpu` tag in file names
/// and a `target_kind` grammar line): fingerprints of different target
/// families live in disjoint hash domains already, but the kind tag makes
/// the separation structural — a CPU entry can never collide with or
/// warm-start a GPU entry even if fingerprints were to collide.
pub const FORMAT_VERSION: u32 = 2;

/// File extension of cache entries.
const EXT: &str = "rcache";

/// Outcome of a cache lookup.
#[derive(Clone, Debug, PartialEq)]
pub enum Lookup<T> {
    /// A complete, version-current entry was found.
    Hit(T),
    /// No entry exists under the key.
    Miss,
    /// An entry exists but is unusable — truncated, garbled, or written
    /// by a different format/pipeline/hash version. Semantically a miss;
    /// the reason is surfaced so invalidations are observable.
    Stale(String),
}

impl<T> Lookup<T> {
    /// The hit payload, if any.
    pub fn hit(self) -> Option<T> {
        match self {
            Lookup::Hit(t) => Some(t),
            _ => None,
        }
    }
}

/// Persisted backend feedback for one prepared kernel version on one
/// target: everything the tuning engine's evaluate phase derives from a
/// backend compile, so a hit skips that compile entirely.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredReport {
    /// The governing launch's report (spill decision source).
    pub backend: BackendReport,
    /// Worst-case register demand over all launches.
    pub worst_regs: u32,
    /// Worst-case spill units over all launches.
    pub spill_units: u32,
    /// Registers the engine would launch with.
    pub launch_regs: u32,
}

/// Persisted winner of one tuning search.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredWinner {
    /// Winning coarsening configuration.
    pub config: CoarsenConfig,
    /// Measured time of the winner, as IEEE-754 bits (bit-exact warm
    /// replay is part of the determinism contract).
    pub seconds_bits: u64,
    /// Registers per thread the winner launches with.
    pub regs: u32,
    /// Canonical printed IR of the winning version; `parse(print(f))`
    /// re-prints byte-identically (enforced by the round-trip property
    /// test), so the function is reconstructed exactly.
    pub ir: String,
    /// Fingerprint of the target the winner was measured on.
    pub target: u64,
    /// Kind tag of that target (`TargetKind::tag()`: `"gpu"` / `"cpu"`).
    /// Part of the key — cross-kind lookups always miss.
    pub target_kind: String,
}

impl StoredWinner {
    /// The measured time in seconds.
    pub fn seconds(&self) -> f64 {
        f64::from_bits(self.seconds_bits)
    }
}

/// A persistent tuning cache rooted at one directory.
pub struct TuningCache {
    dir: PathBuf,
    pipeline_version: u32,
}

impl fmt::Debug for TuningCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TuningCache")
            .field("dir", &self.dir)
            .field("pipeline_version", &self.pipeline_version)
            .finish()
    }
}

impl PartialEq for TuningCache {
    fn eq(&self, other: &TuningCache) -> bool {
        self.dir == other.dir && self.pipeline_version == other.pipeline_version
    }
}

impl TuningCache {
    /// Opens (creating if needed) a cache directory, keyed to the current
    /// [`respec_opt::PIPELINE_VERSION`].
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created, when the path exists
    /// but is not a directory, or when the directory is not writable
    /// (checked with a create-and-delete probe file) — an unusable cache
    /// is a configuration error, unlike a corrupt *entry*, which is a
    /// miss.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<TuningCache> {
        TuningCache::open_versioned(dir, PIPELINE_VERSION)
    }

    /// [`TuningCache::open`] with an explicit pipeline version — the hook
    /// tests use to prove that bumping the pipeline invalidates entries.
    pub fn open_versioned(
        dir: impl Into<PathBuf>,
        pipeline_version: u32,
    ) -> io::Result<TuningCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        // `create_dir_all` succeeds without creating anything when the
        // path already exists — even when it is a regular file on some
        // platforms' error paths, and always when it is an existing
        // directory we cannot write to. Probe both now: an unusable cache
        // must fail at configuration time with a real error, not at the
        // first `store` deep inside a tuning run.
        let meta = fs::metadata(&dir)?;
        if !meta.is_dir() {
            return Err(io::Error::other(format!(
                "{} exists and is not a directory",
                dir.display()
            )));
        }
        let probe = dir.join(format!(".respec-cache-probe-{}", std::process::id()));
        fs::write(&probe, b"probe").map_err(|e| {
            io::Error::new(e.kind(), format!("{} is not writable: {e}", dir.display()))
        })?;
        let _ = fs::remove_file(&probe);
        Ok(TuningCache {
            dir,
            pipeline_version,
        })
    }

    /// Opens the cache named by `RESPEC_CACHE_DIR`, or `None` when the
    /// variable is unset or empty.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures for a set variable.
    pub fn from_env() -> io::Result<Option<TuningCache>> {
        match std::env::var("RESPEC_CACHE_DIR") {
            Ok(dir) if !dir.trim().is_empty() => Ok(Some(TuningCache::open(dir.trim())?)),
            _ => Ok(None),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The pass-pipeline version entries are validated against.
    pub fn pipeline_version(&self) -> u32 {
        self.pipeline_version
    }

    /// Digests a candidate-configuration list into the search fingerprint
    /// component of winner keys. Deliberately covers the configs only —
    /// not the fault plan, retry policy, or worker count — so searches
    /// that explore the same space share winners regardless of how they
    /// were scheduled or chaos-tested.
    pub fn search_fingerprint(configs: &[CoarsenConfig]) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(configs.len() as u64);
        for c in configs {
            for v in c.block.iter().chain(c.thread.iter()) {
                h.write_i64(*v);
            }
        }
        h.finish()
    }

    // -- reports ----------------------------------------------------------

    /// Looks up the compile report for a prepared version on a target of
    /// the given kind (`"gpu"` / `"cpu"`).
    pub fn load_report(
        &self,
        target_kind: &str,
        version_hash: u64,
        target: u64,
    ) -> Lookup<StoredReport> {
        match self.read_entry(&report_name(target_kind, version_hash, target)) {
            Ok(Some(lines)) => self.parse_report(&lines),
            Ok(None) => Lookup::Miss,
            Err(e) => Lookup::Stale(e),
        }
    }

    /// Stores the compile report for a prepared version on a target of the
    /// given kind.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; callers treat stores as
    /// best-effort.
    pub fn store_report(
        &self,
        target_kind: &str,
        version_hash: u64,
        target: u64,
        report: &StoredReport,
    ) -> io::Result<()> {
        let mut text = self.header("report");
        let b = &report.backend;
        let s = &b.stats;
        text.push_str(&format!("version_hash {version_hash:016x}\n"));
        text.push_str(&format!("target_kind {target_kind}\n"));
        text.push_str(&format!("target {target:016x}\n"));
        text.push_str(&format!("regs_per_thread {}\n", b.regs_per_thread));
        text.push_str(&format!("backend_spill_units {}\n", b.spill_units));
        text.push_str(&format!("inst_count {}\n", b.inst_count));
        text.push_str(&format!("worst_regs {}\n", report.worst_regs));
        text.push_str(&format!("spill_units {}\n", report.spill_units));
        text.push_str(&format!("launch_regs {}\n", report.launch_regs));
        let stat_bits: Vec<String> = [
            s.fp32_ops,
            s.fp64_ops,
            s.int_ops,
            s.special_ops,
            s.loads,
            s.stores,
            s.shared_accesses,
            s.branches,
            s.barriers,
        ]
        .iter()
        .map(|v| format!("{:016x}", v.to_bits()))
        .collect();
        text.push_str(&format!("stats {}\n", stat_bits.join(" ")));
        text.push_str("end\n");
        self.write_atomic(
            &report_name(target_kind, version_hash, target),
            text.as_bytes(),
        )
    }

    fn parse_report(&self, lines: &[String]) -> Lookup<StoredReport> {
        let mut fields = Fields::new(lines);
        match (|| -> Result<StoredReport, String> {
            fields.expect_kind("report")?;
            fields.next_kv("version_hash")?;
            fields.next_kv("target_kind")?;
            fields.next_kv("target")?;
            let regs_per_thread = fields.get_u32("regs_per_thread")?;
            let backend_spill_units = fields.get_u32("backend_spill_units")?;
            let inst_count = fields.get_u64("inst_count")? as usize;
            let worst_regs = fields.get_u32("worst_regs")?;
            let spill_units = fields.get_u32("spill_units")?;
            let launch_regs = fields.get_u32("launch_regs")?;
            let bits = fields.get_hex_list("stats", 9)?;
            let stats = KernelStats {
                fp32_ops: f64::from_bits(bits[0]),
                fp64_ops: f64::from_bits(bits[1]),
                int_ops: f64::from_bits(bits[2]),
                special_ops: f64::from_bits(bits[3]),
                loads: f64::from_bits(bits[4]),
                stores: f64::from_bits(bits[5]),
                shared_accesses: f64::from_bits(bits[6]),
                branches: f64::from_bits(bits[7]),
                barriers: f64::from_bits(bits[8]),
            };
            Ok(StoredReport {
                backend: BackendReport {
                    regs_per_thread,
                    spill_units: backend_spill_units,
                    inst_count,
                    stats,
                },
                worst_regs,
                spill_units,
                launch_regs,
            })
        })() {
            Ok(r) => Lookup::Hit(r),
            Err(e) => Lookup::Stale(e),
        }
    }

    // -- winners ----------------------------------------------------------

    /// Looks up the winner of a search over `(kind, input IR, target,
    /// search)`.
    pub fn load_winner(
        &self,
        target_kind: &str,
        input_hash: u64,
        target: u64,
        search: u64,
    ) -> Lookup<StoredWinner> {
        match self.read_entry(&winner_name(target_kind, input_hash, target, search)) {
            Ok(Some(lines)) => self.parse_winner(&lines),
            Ok(None) => Lookup::Miss,
            Err(e) => Lookup::Stale(e),
        }
    }

    /// Stores the winner of a search.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; callers treat stores as
    /// best-effort.
    pub fn store_winner(
        &self,
        input_hash: u64,
        search: u64,
        winner: &StoredWinner,
    ) -> io::Result<()> {
        let mut text = self.header("winner");
        let c = winner.config;
        text.push_str(&format!("input_hash {input_hash:016x}\n"));
        text.push_str(&format!("target_kind {}\n", winner.target_kind));
        text.push_str(&format!("target {:016x}\n", winner.target));
        text.push_str(&format!("search {search:016x}\n"));
        text.push_str(&format!(
            "config {} {} {} {} {} {}\n",
            c.block[0], c.block[1], c.block[2], c.thread[0], c.thread[1], c.thread[2]
        ));
        text.push_str(&format!("seconds {:016x}\n", winner.seconds_bits));
        text.push_str(&format!("regs {}\n", winner.regs));
        text.push_str(&format!("ir {}\n", winner.ir.len()));
        text.push_str(&winner.ir);
        if !winner.ir.ends_with('\n') {
            text.push('\n');
        }
        text.push_str("end\n");
        self.write_atomic(
            &winner_name(&winner.target_kind, input_hash, winner.target, search),
            text.as_bytes(),
        )
    }

    fn parse_winner(&self, lines: &[String]) -> Lookup<StoredWinner> {
        let mut fields = Fields::new(lines);
        match (|| -> Result<StoredWinner, String> {
            fields.expect_kind("winner")?;
            fields.next_kv("input_hash")?;
            let target_kind = fields.next_kv("target_kind")?.trim().to_string();
            let target = fields.get_hex("target")?;
            fields.next_kv("search")?;
            let cfg = fields.get_i64_list("config", 6)?;
            let seconds_bits = fields.get_hex("seconds")?;
            let regs = fields.get_u32("regs")?;
            let ir = fields.take_blob("ir")?;
            Ok(StoredWinner {
                config: CoarsenConfig {
                    block: [cfg[0], cfg[1], cfg[2]],
                    thread: [cfg[3], cfg[4], cfg[5]],
                },
                seconds_bits,
                regs,
                ir,
                target,
                target_kind,
            })
        })() {
            Ok(w) => Lookup::Hit(w),
            Err(e) => Lookup::Stale(e),
        }
    }

    /// Every readable, version-current winner recorded for `input_hash` on
    /// a target *other* than `exclude_target`, within the same target
    /// kind — the cross-target transfer set a retargeted search
    /// warm-starts from. Warm starts never cross the GPU/CPU divide: the
    /// two families have opposite preferences (few heavy threads vs many
    /// light ones), so a cross-kind hint would prioritize exactly the
    /// wrong configurations. Results are ordered by file name, so
    /// consumers are deterministic given a directory state; unreadable
    /// entries are skipped (they surface as invalidations only when
    /// looked up directly).
    pub fn cross_target_winners(
        &self,
        target_kind: &str,
        input_hash: u64,
        exclude_target: u64,
    ) -> Vec<StoredWinner> {
        self.scan_winners(target_kind, input_hash, Some(exclude_target))
    }

    /// Every readable, version-current winner recorded for `input_hash`
    /// within `target_kind`, across *all* targets of that kind — the pool a
    /// fat-binary mine ([`fatbin::mine_variants`]) selects variants from.
    /// Same ordering and kind-scoping contract as
    /// [`TuningCache::cross_target_winners`], with no target excluded.
    pub fn winners_for_input(&self, target_kind: &str, input_hash: u64) -> Vec<StoredWinner> {
        self.scan_winners(target_kind, input_hash, None)
    }

    fn scan_winners(
        &self,
        target_kind: &str,
        input_hash: u64,
        exclude_target: Option<u64>,
    ) -> Vec<StoredWinner> {
        let prefix = format!("w-{target_kind}-{input_hash:016x}-");
        let skip = exclude_target.map(|t| format!("w-{target_kind}-{input_hash:016x}-{t:016x}-"));
        let mut names: Vec<String> = match fs::read_dir(&self.dir) {
            Ok(rd) => rd
                .filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| {
                    n.starts_with(&prefix)
                        && skip.as_ref().is_none_or(|s| !n.starts_with(s.as_str()))
                        && n.ends_with(EXT)
                })
                .collect(),
            Err(_) => return Vec::new(),
        };
        names.sort();
        names
            .iter()
            .filter_map(|n| match self.read_entry(n) {
                Ok(Some(lines)) => self.parse_winner(&lines).hit(),
                _ => None,
            })
            // The file-name prefix scopes the scan to one kind, but the
            // name is only an index — a renamed or hand-planted entry can
            // claim a different kind in its body. The body is
            // authoritative: drop any winner whose recorded kind (or
            // excluded target) disagrees, so a mixed gpu+cpu store can
            // never leak a variant across the kind divide.
            .filter(|w| w.target_kind == target_kind && Some(w.target) != exclude_target)
            .collect()
    }

    /// Paths of every entry currently in the cache (sorted). Tooling and
    /// chaos tests use this to pick victims for corruption.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn entry_paths(&self) -> io::Result<Vec<PathBuf>> {
        let mut out: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(EXT))
            .collect();
        out.sort();
        Ok(out)
    }

    // -- plumbing ---------------------------------------------------------

    fn header(&self, kind: &str) -> String {
        format!(
            "respec-cache-v{FORMAT_VERSION}\npipeline {}\nhashver {STRUCTURAL_HASH_VERSION}\nkind {kind}\n",
            self.pipeline_version
        )
    }

    /// Reads an entry and validates its version envelope. `Ok(None)` means
    /// no file; `Err` carries the staleness reason.
    fn read_entry(&self, name: &str) -> Result<Option<Vec<String>>, String> {
        let path = self.dir.join(name);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("unreadable entry: {e}")),
        };
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        if lines.first().map(String::as_str) != Some(concat_header().as_str()) {
            return Err(format!(
                "unrecognized header {:?} (want {:?})",
                lines.first().cloned().unwrap_or_default(),
                concat_header()
            ));
        }
        let expect_kv = |idx: usize, key: &str, want: u32| -> Result<(), String> {
            let line = lines.get(idx).cloned().unwrap_or_default();
            match line.strip_prefix(&format!("{key} ")) {
                Some(v) if v.trim().parse::<u32>() == Ok(want) => Ok(()),
                _ => Err(format!("stale {key} line {line:?} (want {key} {want})")),
            }
        };
        expect_kv(1, "pipeline", self.pipeline_version)?;
        expect_kv(2, "hashver", STRUCTURAL_HASH_VERSION)?;
        if lines.last().map(String::as_str) != Some("end") {
            return Err("truncated entry (missing end marker)".into());
        }
        Ok(Some(lines))
    }

    /// Writes `bytes` to `name` atomically: temp file in the same
    /// directory, flushed, then renamed over the destination.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            ".{name}.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        match fs::rename(&tmp, self.dir.join(name)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

fn concat_header() -> String {
    format!("respec-cache-v{FORMAT_VERSION}")
}

fn report_name(kind: &str, version_hash: u64, target: u64) -> String {
    format!("r-{kind}-{version_hash:016x}-{target:016x}.{EXT}")
}

fn winner_name(kind: &str, input_hash: u64, target: u64, search: u64) -> String {
    format!("w-{kind}-{input_hash:016x}-{target:016x}-{search:016x}.{EXT}")
}

/// Ordered field reader over an entry's body lines (after the 4-line
/// version envelope). Every accessor fails with a message instead of
/// panicking — parse failures become [`Lookup::Stale`].
struct Fields<'a> {
    lines: &'a [String],
    pos: usize,
}

impl<'a> Fields<'a> {
    fn new(lines: &'a [String]) -> Fields<'a> {
        Fields { lines, pos: 3 }
    }

    fn next_kv(&mut self, key: &str) -> Result<&'a str, String> {
        let line = self
            .lines
            .get(self.pos)
            .ok_or_else(|| format!("missing field {key}"))?;
        self.pos += 1;
        line.strip_prefix(&format!("{key} "))
            .ok_or_else(|| format!("expected field {key}, found {line:?}"))
    }

    fn expect_kind(&mut self, want: &str) -> Result<(), String> {
        let got = self.next_kv("kind")?;
        if got == want {
            Ok(())
        } else {
            Err(format!("entry kind {got:?} where {want:?} was expected"))
        }
    }

    fn get_u32(&mut self, key: &str) -> Result<u32, String> {
        self.next_kv(key)?
            .trim()
            .parse()
            .map_err(|e| format!("field {key}: {e}"))
    }

    fn get_u64(&mut self, key: &str) -> Result<u64, String> {
        self.next_kv(key)?
            .trim()
            .parse()
            .map_err(|e| format!("field {key}: {e}"))
    }

    fn get_hex(&mut self, key: &str) -> Result<u64, String> {
        u64::from_str_radix(self.next_kv(key)?.trim(), 16).map_err(|e| format!("field {key}: {e}"))
    }

    fn get_hex_list(&mut self, key: &str, want: usize) -> Result<Vec<u64>, String> {
        let raw = self.next_kv(key)?;
        let vals: Result<Vec<u64>, _> = raw
            .split_whitespace()
            .map(|t| u64::from_str_radix(t, 16))
            .collect();
        let vals = vals.map_err(|e| format!("field {key}: {e}"))?;
        if vals.len() != want {
            return Err(format!("field {key}: {} values, want {want}", vals.len()));
        }
        Ok(vals)
    }

    fn get_i64_list(&mut self, key: &str, want: usize) -> Result<Vec<i64>, String> {
        let raw = self.next_kv(key)?;
        let vals: Result<Vec<i64>, _> = raw.split_whitespace().map(str::parse).collect();
        let vals = vals.map_err(|e| format!("field {key}: {e}"))?;
        if vals.len() != want {
            return Err(format!("field {key}: {} values, want {want}", vals.len()));
        }
        Ok(vals)
    }

    /// Reads a length-prefixed multi-line blob (`<key> <byte-len>` then the
    /// raw lines). The recorded length must match exactly — a mismatch is
    /// the truncation signal for the one field a trailing marker cannot
    /// fully protect.
    fn take_blob(&mut self, key: &str) -> Result<String, String> {
        let len = self.get_u64(key)? as usize;
        let mut blob = String::new();
        while blob.len() < len {
            let line = self
                .lines
                .get(self.pos)
                .ok_or_else(|| format!("field {key}: blob truncated at {} bytes", blob.len()))?;
            self.pos += 1;
            blob.push_str(line);
            blob.push('\n');
        }
        // The stored length excludes a possibly-added trailing newline.
        while blob.len() > len {
            match blob.pop() {
                Some('\n') => {}
                _ => return Err(format!("field {key}: blob length mismatch")),
            }
        }
        Ok(blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_cache_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "respec-cache-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_report() -> StoredReport {
        StoredReport {
            backend: BackendReport {
                regs_per_thread: 24,
                spill_units: 3,
                inst_count: 120,
                stats: KernelStats {
                    fp32_ops: 64.0,
                    fp64_ops: 0.5,
                    int_ops: 12.0,
                    special_ops: 0.0,
                    loads: 8.25,
                    stores: 4.0,
                    shared_accesses: 16.0,
                    branches: 2.0,
                    barriers: 1.0,
                },
            },
            worst_regs: 40,
            spill_units: 3,
            launch_regs: 32,
        }
    }

    fn sample_winner() -> StoredWinner {
        StoredWinner {
            config: CoarsenConfig {
                block: [2, 1, 1],
                thread: [4, 1, 1],
            },
            seconds_bits: 1.25e-3f64.to_bits(),
            regs: 32,
            ir: "func @k() {\n  return\n}".into(),
            target: 0xfeed,
            target_kind: "gpu".into(),
        }
    }

    #[test]
    fn open_rejects_a_path_that_is_a_regular_file() {
        let path = temp_cache_dir("file-collision");
        std::fs::write(&path, b"not a directory").unwrap();
        let err = TuningCache::open(&path).expect_err("a file is not a cache directory");
        assert!(
            err.to_string().contains("not a directory")
                || err.kind() == io::ErrorKind::AlreadyExists,
            "error must name the misconfiguration: {err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_rejects_a_path_under_a_regular_file() {
        let file = temp_cache_dir("parent-file");
        std::fs::write(&file, b"blocker").unwrap();
        let nested = file.join("cache");
        TuningCache::open(&nested).expect_err("cannot create a directory under a file");
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn open_probes_writability_and_leaves_no_probe_behind() {
        let dir = temp_cache_dir("probe");
        let cache = TuningCache::open(&dir).unwrap();
        // The probe file must not linger as a fake cache entry.
        assert_eq!(cache.entry_paths().unwrap(), Vec::<PathBuf>::new());
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "probe file must be removed after the writability check"
        );
    }

    #[test]
    fn report_round_trips_bit_exactly() {
        let cache = TuningCache::open(temp_cache_dir("report")).unwrap();
        assert_eq!(cache.load_report("gpu", 1, 2), Lookup::Miss);
        let report = sample_report();
        cache.store_report("gpu", 1, 2, &report).unwrap();
        assert_eq!(cache.load_report("gpu", 1, 2), Lookup::Hit(report));
        // A different key is an independent entry.
        assert_eq!(cache.load_report("gpu", 1, 3), Lookup::Miss);
    }

    #[test]
    fn winner_round_trips_with_multiline_ir() {
        let cache = TuningCache::open(temp_cache_dir("winner")).unwrap();
        let w = sample_winner();
        cache.store_winner(7, 9, &w).unwrap();
        let got = cache.load_winner("gpu", 7, 0xfeed, 9).hit().expect("hit");
        assert_eq!(got, w);
        assert_eq!(got.seconds().to_bits(), w.seconds_bits);
    }

    #[test]
    fn truncated_and_garbled_entries_are_stale_not_errors() {
        let cache = TuningCache::open(temp_cache_dir("corrupt")).unwrap();
        cache.store_report("gpu", 5, 6, &sample_report()).unwrap();
        cache.store_winner(7, 9, &sample_winner()).unwrap();
        for path in cache.entry_paths().unwrap() {
            let full = fs::read_to_string(&path).unwrap();
            // Truncation: drop the tail (loses the end marker / blob).
            fs::write(&path, &full[..full.len() / 2]).unwrap();
        }
        assert!(matches!(cache.load_report("gpu", 5, 6), Lookup::Stale(_)));
        assert!(matches!(
            cache.load_winner("gpu", 7, 0xfeed, 9),
            Lookup::Stale(_)
        ));
        // Garbage bytes.
        for path in cache.entry_paths().unwrap() {
            fs::write(&path, b"\x00\xff not a cache entry \x00").unwrap();
        }
        assert!(matches!(cache.load_report("gpu", 5, 6), Lookup::Stale(_)));
        assert!(matches!(
            cache.load_winner("gpu", 7, 0xfeed, 9),
            Lookup::Stale(_)
        ));
    }

    #[test]
    fn bumped_pipeline_version_invalidates_entries() {
        let dir = temp_cache_dir("pipeline");
        let old = TuningCache::open_versioned(&dir, 1).unwrap();
        old.store_report("gpu", 5, 6, &sample_report()).unwrap();
        old.store_winner(7, 9, &sample_winner()).unwrap();
        let new = TuningCache::open_versioned(&dir, 2).unwrap();
        match new.load_report("gpu", 5, 6) {
            Lookup::Stale(reason) => assert!(reason.contains("pipeline"), "{reason}"),
            other => panic!("expected stale, got {other:?}"),
        }
        assert!(matches!(
            new.load_winner("gpu", 7, 0xfeed, 9),
            Lookup::Stale(_)
        ));
        // The old version still reads its own entries.
        assert!(matches!(old.load_report("gpu", 5, 6), Lookup::Hit(_)));
    }

    #[test]
    fn cross_target_winners_exclude_the_current_target() {
        let cache = TuningCache::open(temp_cache_dir("xtarget")).unwrap();
        let mut here = sample_winner();
        here.target = 0xaaaa;
        let mut there = sample_winner();
        there.target = 0xbbbb;
        there.config = CoarsenConfig {
            block: [1, 1, 1],
            thread: [8, 1, 1],
        };
        cache.store_winner(7, 9, &here).unwrap();
        cache.store_winner(7, 9, &there).unwrap();
        // A winner for a *different kernel* must never be a hint.
        cache.store_winner(8, 9, &there).unwrap();
        let hints = cache.cross_target_winners("gpu", 7, 0xaaaa);
        assert_eq!(hints.len(), 1);
        assert_eq!(hints[0].config, there.config);
        assert_eq!(hints[0].target, 0xbbbb);
    }

    #[test]
    fn cross_kind_lookups_always_miss() {
        // The same fingerprints under a different target kind must be
        // invisible: a CPU search can never replay, preload, or
        // warm-start from a GPU entry (and vice versa).
        let cache = TuningCache::open(temp_cache_dir("kind")).unwrap();
        let w = sample_winner(); // target_kind: "gpu"
        cache.store_winner(7, 9, &w).unwrap();
        cache.store_report("gpu", 1, 2, &sample_report()).unwrap();

        assert_eq!(cache.load_winner("cpu", 7, 0xfeed, 9), Lookup::Miss);
        assert_eq!(cache.load_report("cpu", 1, 2), Lookup::Miss);
        assert!(
            cache.cross_target_winners("cpu", 7, 0).is_empty(),
            "warm starts must not cross the gpu/cpu divide"
        );
        // Same-kind lookups still hit.
        assert!(matches!(
            cache.load_winner("gpu", 7, 0xfeed, 9),
            Lookup::Hit(_)
        ));
        assert!(matches!(cache.load_report("gpu", 1, 2), Lookup::Hit(_)));
        assert_eq!(cache.cross_target_winners("gpu", 7, 0).len(), 1);

        // A CPU winner under the same hashes coexists as an independent
        // entry rather than clobbering the GPU one.
        let mut cw = sample_winner();
        cw.target_kind = "cpu".into();
        cw.config = CoarsenConfig {
            block: [8, 1, 1],
            thread: [1, 1, 1],
        };
        cache.store_winner(7, 9, &cw).unwrap();
        assert_eq!(cache.load_winner("cpu", 7, 0xfeed, 9), Lookup::Hit(cw));
        assert_eq!(cache.load_winner("gpu", 7, 0xfeed, 9), Lookup::Hit(w));
    }

    #[test]
    fn winner_scans_trust_the_entry_body_over_the_file_name() {
        // A fat-bin mine over a mixed gpu+cpu store must never select a
        // variant across the kind divide — even when an entry *file name*
        // lies about its kind. Plant a winner whose body says "cpu" under a
        // gpu-prefixed name (simulating a renamed or hand-planted entry):
        // both scan APIs must drop it, because the body is authoritative.
        let cache = TuningCache::open(temp_cache_dir("kind-leak")).unwrap();
        let gpu = sample_winner();
        cache.store_winner(7, 9, &gpu).unwrap();
        let mut cpu = sample_winner();
        cpu.target_kind = "cpu".into();
        cpu.target = 0xc0de;
        cpu.config = CoarsenConfig {
            block: [8, 1, 1],
            thread: [1, 1, 1],
        };
        cache.store_winner(7, 9, &cpu).unwrap();
        // Honest mixed store: each kind's scan sees only its own winners.
        let mined_gpu = cache.winners_for_input("gpu", 7);
        assert_eq!(mined_gpu.len(), 1);
        assert!(mined_gpu.iter().all(|w| w.target_kind == "gpu"));
        let mined_cpu = cache.winners_for_input("cpu", 7);
        assert_eq!(mined_cpu.len(), 1);
        assert!(mined_cpu.iter().all(|w| w.target_kind == "cpu"));
        // Dishonest entry: rename the cpu winner's file under a gpu prefix.
        let cpu_path = cache
            .entry_paths()
            .unwrap()
            .into_iter()
            .find(|p| p.file_name().unwrap().to_string_lossy().contains("w-cpu-"))
            .expect("cpu winner entry exists");
        let forged = cpu_path.with_file_name(
            cpu_path
                .file_name()
                .unwrap()
                .to_string_lossy()
                .replacen("w-cpu-", "w-gpu-", 1),
        );
        fs::rename(&cpu_path, &forged).unwrap();
        let mined = cache.winners_for_input("gpu", 7);
        assert_eq!(mined.len(), 1, "forged cpu entry must not leak: {mined:?}");
        assert!(mined.iter().all(|w| w.target_kind == "gpu"));
        assert!(
            cache
                .cross_target_winners("gpu", 7, 0)
                .iter()
                .all(|w| w.target_kind == "gpu"),
            "warm-start hints must honor the body kind too"
        );
    }

    #[test]
    fn winners_for_input_returns_the_full_same_kind_pool() {
        let cache = TuningCache::open(temp_cache_dir("pool")).unwrap();
        let mut a = sample_winner();
        a.target = 0xaaaa;
        let mut b = sample_winner();
        b.target = 0xbbbb;
        cache.store_winner(7, 9, &a).unwrap();
        cache.store_winner(7, 9, &b).unwrap();
        // Unlike the warm-start scan, mining excludes no target…
        assert_eq!(cache.winners_for_input("gpu", 7).len(), 2);
        assert_eq!(cache.cross_target_winners("gpu", 7, 0xaaaa).len(), 1);
        // …and still scopes by kernel hash.
        assert!(cache.winners_for_input("gpu", 8).is_empty());
    }

    #[test]
    fn search_fingerprint_covers_configs_and_order() {
        let a = CoarsenConfig::identity();
        let b = CoarsenConfig {
            block: [2, 1, 1],
            thread: [1, 1, 1],
        };
        let ab = TuningCache::search_fingerprint(&[a, b]);
        let ba = TuningCache::search_fingerprint(&[b, a]);
        let aa = TuningCache::search_fingerprint(&[a, a]);
        assert_ne!(ab, ba);
        assert_ne!(ab, aa);
        assert_eq!(ab, TuningCache::search_fingerprint(&[a, b]));
    }

    #[test]
    fn writes_leave_no_temp_files_behind() {
        let cache = TuningCache::open(temp_cache_dir("atomic")).unwrap();
        cache.store_report("gpu", 1, 1, &sample_report()).unwrap();
        cache.store_report("gpu", 1, 1, &sample_report()).unwrap();
        let leftovers: Vec<_> = fs::read_dir(cache.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        assert_eq!(cache.entry_paths().unwrap().len(), 1);
    }
}
