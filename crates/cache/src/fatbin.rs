//! Fat-binary mining: from per-target stored winners to a minimal
//! multi-versioned variant set ("A Few Fit Most", Hochgraf & Pai).
//!
//! The persistent store records one winner per `(kind, input IR, target,
//! search)` key. For one input kernel that is a *winner column* per target;
//! this module turns those columns into a small set of variants that covers
//! every target within a caller-chosen slowdown budget ε:
//!
//! 1. **Mine** ([`mine_variants`]): walk every readable winner recorded for
//!    the input hash within one target kind and deduplicate by coarsening
//!    configuration — two targets that elected the same configuration share
//!    one variant. Mining never crosses the GPU/CPU divide: a CPU winner is
//!    lane-tiled lowered code, meaningless as a GPU variant (and vice
//!    versa), so each kind mines its own pool.
//! 2. **Evaluate** (caller-side): measure every mined configuration on
//!    every same-kind target, producing the seconds matrix this module's
//!    selection consumes. The cache crate stays simulator-free on purpose —
//!    the matrix is plain data here.
//! 3. **Select** ([`select_variants`]): greedy set cover. A variant
//!    *covers* a target when its measured time is within `(1 + ε)` of that
//!    target's optimum over the whole pool; repeatedly choose the variant
//!    covering the most still-uncovered targets until none remain. Each
//!    chosen variant covers at least one new target, so the set never
//!    exceeds the target count, and at ε = 0 only exact optima cover — the
//!    selection degenerates to one variant per distinct winner.

use std::fmt;

use respec_opt::CoarsenConfig;

use crate::{StoredWinner, TuningCache};

/// One deduplicated variant mined from the winner store: a coarsening
/// configuration plus every stored winner that elected it.
#[derive(Clone, Debug)]
pub struct MinedVariant {
    /// The winning configuration (the variant's identity).
    pub config: CoarsenConfig,
    /// Every stored winner with this configuration, in sorted entry order.
    /// Carries the per-source-target IR, registers and bit-exact time.
    pub sources: Vec<StoredWinner>,
}

impl MinedVariant {
    /// The stored winner recorded for `target`, if this variant was elected
    /// there.
    pub fn source_for(&self, target: u64) -> Option<&StoredWinner> {
        self.sources.iter().find(|w| w.target == target)
    }
}

/// Walks every readable, version-current winner stored for `input_hash`
/// within `target_kind` and groups them into one [`MinedVariant`] per
/// distinct coarsening configuration.
///
/// Variants are ordered by configuration tuple (block then thread factors),
/// so the result is deterministic for a given store state regardless of
/// directory iteration order. An empty result means no winner of this kind
/// is stored — callers decide whether that is an error.
pub fn mine_variants(cache: &TuningCache, target_kind: &str, input_hash: u64) -> Vec<MinedVariant> {
    let mut variants: Vec<MinedVariant> = Vec::new();
    for winner in cache.winners_for_input(target_kind, input_hash) {
        match variants.iter_mut().find(|v| v.config == winner.config) {
            Some(v) => v.sources.push(winner),
            None => variants.push(MinedVariant {
                config: winner.config,
                sources: vec![winner],
            }),
        }
    }
    variants.sort_by_key(|v| {
        let c = v.config;
        (c.block, c.thread)
    });
    variants
}

/// Error from fat-binary selection: malformed matrix or budget.
#[derive(Clone, Debug, PartialEq)]
pub struct FatbinError {
    /// Human-readable reason.
    pub message: String,
}

impl FatbinError {
    fn new(message: impl Into<String>) -> FatbinError {
        FatbinError {
            message: message.into(),
        }
    }
}

impl fmt::Display for FatbinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fat-binary error: {}", self.message)
    }
}

impl std::error::Error for FatbinError {}

/// Outcome of greedy variant selection over one seconds matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Selection {
    /// Chosen variant indices (rows of the matrix), in selection order.
    pub chosen: Vec<usize>,
    /// Per target (column): the chosen variant assigned to it — among the
    /// chosen variants that cover it, the one with the smallest time (ties
    /// to the lowest index). `None` when no variant has a finite time on
    /// the target at all.
    pub assignment: Vec<Option<usize>>,
    /// Per target: its tuned optimum over the whole variant pool (the
    /// column minimum; ε is measured against this).
    pub best: Vec<f64>,
}

impl Selection {
    /// Number of targets with an assigned variant.
    pub fn covered(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }
}

/// Greedy minimal variant-set selection.
///
/// `seconds[v][t]` is variant `v`'s measured time on target `t`
/// (`f64::INFINITY` for a variant that cannot run there — pruned, failed,
/// or wrong kind). Variant `v` covers target `t` when
/// `seconds[v][t] <= best[t] * (1 + epsilon)` with `best[t]` the column
/// minimum. The greedy loop picks the variant covering the most uncovered
/// targets (ties to the lowest variant index), until every coverable
/// target is covered — each iteration covers at least one new target, so
/// `chosen.len()` never exceeds the coverable-target count.
///
/// # Errors
///
/// Rejects a negative or non-finite `epsilon`, an empty matrix, and ragged
/// rows.
pub fn select_variants(seconds: &[Vec<f64>], epsilon: f64) -> Result<Selection, FatbinError> {
    if !epsilon.is_finite() || epsilon < 0.0 {
        return Err(FatbinError::new(format!(
            "epsilon must be finite and non-negative, got {epsilon}"
        )));
    }
    let variants = seconds.len();
    let targets = seconds.first().map(|row| row.len()).unwrap_or(0);
    if variants == 0 || targets == 0 {
        return Err(FatbinError::new(
            "empty winner matrix: no variants were mined (is the cache cold?)",
        ));
    }
    if seconds.iter().any(|row| row.len() != targets) {
        return Err(FatbinError::new("ragged winner matrix"));
    }
    let best: Vec<f64> = (0..targets)
        .map(|t| {
            seconds
                .iter()
                .map(|row| row[t])
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let covers = |v: usize, t: usize| -> bool {
        seconds[v][t].is_finite() && seconds[v][t] <= best[t] * (1.0 + epsilon)
    };
    let mut uncovered: Vec<usize> = (0..targets).filter(|&t| best[t].is_finite()).collect();
    let mut chosen: Vec<usize> = Vec::new();
    while !uncovered.is_empty() {
        let (v, gain) = (0..variants)
            .map(|v| (v, uncovered.iter().filter(|&&t| covers(v, t)).count()))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("matrix is non-empty");
        if gain == 0 {
            // Unreachable for a well-formed matrix (the column-min variant
            // always covers its target), but a defensive exit beats a spin.
            break;
        }
        chosen.push(v);
        uncovered.retain(|&t| !covers(v, t));
    }
    let assignment: Vec<Option<usize>> = (0..targets)
        .map(|t| {
            chosen
                .iter()
                .copied()
                .filter(|&v| covers(v, t))
                .min_by(|&a, &b| {
                    seconds[a][t]
                        .partial_cmp(&seconds[b][t])
                        .expect("covering times are finite")
                        .then(a.cmp(&b))
                })
        })
        .collect();
    Ok(Selection {
        chosen,
        assignment,
        best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(bt: i64, tt: i64) -> CoarsenConfig {
        CoarsenConfig {
            block: [bt, 1, 1],
            thread: [tt, 1, 1],
        }
    }

    fn winner(config: CoarsenConfig, kind: &str, target: u64, seconds: f64) -> StoredWinner {
        StoredWinner {
            config,
            seconds_bits: seconds.to_bits(),
            regs: 32,
            ir: "func @k() {\n}\n".to_string(),
            target,
            target_kind: kind.to_string(),
        }
    }

    fn temp_cache(tag: &str) -> TuningCache {
        let dir = std::env::temp_dir().join(format!(
            "respec-fatbin-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TuningCache::open(&dir).expect("temp cache opens")
    }

    #[test]
    fn mining_dedups_by_config_and_sorts() {
        let cache = temp_cache("dedup");
        let hash = 0x42;
        cache
            .store_winner(hash, 1, &winner(cfg(2, 1), "gpu", 10, 1.0))
            .unwrap();
        cache
            .store_winner(hash, 1, &winner(cfg(1, 2), "gpu", 11, 2.0))
            .unwrap();
        cache
            .store_winner(hash, 2, &winner(cfg(2, 1), "gpu", 12, 3.0))
            .unwrap();
        let variants = mine_variants(&cache, "gpu", hash);
        assert_eq!(variants.len(), 2);
        assert_eq!(variants[0].config, cfg(1, 2));
        assert_eq!(variants[1].config, cfg(2, 1));
        assert_eq!(variants[1].sources.len(), 2);
        assert!(variants[1].source_for(12).is_some());
        assert!(variants[1].source_for(99).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn mining_is_kind_scoped() {
        let cache = temp_cache("kind");
        let hash = 0x77;
        cache
            .store_winner(hash, 1, &winner(cfg(2, 1), "gpu", 10, 1.0))
            .unwrap();
        cache
            .store_winner(hash, 1, &winner(cfg(4, 1), "cpu", 20, 1.0))
            .unwrap();
        let gpu = mine_variants(&cache, "gpu", hash);
        let cpu = mine_variants(&cache, "cpu", hash);
        assert_eq!(gpu.len(), 1);
        assert_eq!(gpu[0].config, cfg(2, 1));
        assert!(gpu[0].sources.iter().all(|w| w.target_kind == "gpu"));
        assert_eq!(cpu.len(), 1);
        assert_eq!(cpu[0].config, cfg(4, 1));
        assert!(cpu[0].sources.iter().all(|w| w.target_kind == "cpu"));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn selection_covers_within_epsilon() {
        // Variant 0 is near-optimal everywhere at ε=10%; variants 1 and 2
        // are each target's exact optimum.
        let m = vec![
            vec![1.05, 2.1, 1.05],
            vec![1.0, f64::INFINITY, 9.0],
            vec![9.0, 2.0, 1.0],
        ];
        let s = select_variants(&m, 0.10).unwrap();
        assert_eq!(s.chosen, vec![0]);
        assert_eq!(s.assignment, vec![Some(0), Some(0), Some(0)]);
        let tight = select_variants(&m, 0.0).unwrap();
        assert_eq!(tight.chosen.len(), 2);
        assert_eq!(tight.assignment, vec![Some(1), Some(2), Some(2)]);
    }

    #[test]
    fn selection_rejects_bad_inputs() {
        assert!(select_variants(&[], 0.05).is_err());
        assert!(select_variants(&[vec![]], 0.05).is_err());
        assert!(select_variants(&[vec![1.0], vec![1.0, 2.0]], 0.05).is_err());
        assert!(select_variants(&[vec![1.0]], -0.1).is_err());
        assert!(select_variants(&[vec![1.0]], f64::NAN).is_err());
    }

    #[test]
    fn uncoverable_target_stays_unassigned() {
        let m = vec![vec![1.0, f64::INFINITY]];
        let s = select_variants(&m, 0.05).unwrap();
        assert_eq!(s.chosen, vec![0]);
        assert_eq!(s.assignment, vec![Some(0), None]);
        assert_eq!(s.covered(), 1);
    }
}
