//! Nested parallel loop unroll-and-interleave (§IV of the paper).
//!
//! Unrolling a parallel loop by factor *N* conceptually replicates its body
//! for *N* iterations; because parallel iterations have no mutual ordering
//! constraints, the replicas may be *interleaved* statement by statement
//! (Fig. 7). Nested control flow with instance-invariant bounds is
//! *jammed* — a single loop/conditional whose body is interleaved
//! (Fig. 8) — while instance-variant control flow is duplicated per instance
//! (Fig. 9). Barriers are merged into a single barrier when interleaved;
//! a factor that would *duplicate* a barrier is rejected as illegal
//! (Fig. 10, §IV-B).

use std::collections::HashMap;
use std::fmt;

use respec_ir::walk::{clone_op, walk_ops};
use respec_ir::{Function, OpId, OpKind, ParLevel, RegionId, ScalarType, Type, Value};

/// How unrolled instances index the iteration space (§V, Fig. 11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexingStyle {
    /// Instance `u` handles iteration `iv·f + u`: merged iterations are
    /// adjacent (block coarsening — preserves intra-block patterns).
    Contiguous,
    /// Instance `u` handles iteration `iv + u·ub'`: consecutive *new*
    /// iterations stay consecutive (thread coarsening — preserves memory
    /// coalescing, the "coalescing-friendly" indexing of prior work).
    Strided,
}

/// Error produced when unroll-and-interleave is illegal or malformed.
#[derive(Clone, Debug, PartialEq)]
pub struct InterleaveError {
    /// Human-readable reason.
    pub message: String,
}

impl InterleaveError {
    fn new(message: impl Into<String>) -> InterleaveError {
        InterleaveError {
            message: message.into(),
        }
    }
}

impl fmt::Display for InterleaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unroll-and-interleave is illegal: {}", self.message)
    }
}

impl std::error::Error for InterleaveError {}

/// Finds the region that directly contains `op`. Scans every region of the
/// arena, so it also works for regions not (yet) attached to the body (the
/// alternatives flow coarsens detached regions).
pub fn parent_region(func: &Function, op: OpId) -> Option<RegionId> {
    (0..func.num_regions())
        .map(RegionId::from_index)
        .find(|&r| func.region(r).ops.contains(&op))
}

/// Returns `true` if any barrier is nested under `region`.
pub fn region_contains_barrier(func: &Function, region: RegionId) -> bool {
    let mut found = false;
    walk_ops(func, region, &mut |op| {
        if matches!(func.op(op).kind, OpKind::Barrier { .. }) {
            found = true;
        }
    });
    found
}

/// How the terminator of an interleaved region is rebuilt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum YieldMode {
    /// `yield` with no values (parallel bodies).
    Empty,
    /// `yield` carrying each instance's values, concatenated in instance
    /// order (jammed `for`/`if` bodies).
    Concat,
}

struct Interleaver<'f> {
    func: &'f mut Function,
}

impl<'f> Interleaver<'f> {
    fn emit(
        &mut self,
        dest: RegionId,
        kind: OpKind,
        operands: Vec<Value>,
        result_types: Vec<Type>,
        regions: Vec<RegionId>,
    ) -> OpId {
        let op = self.func.make_op(kind, operands, result_types, regions);
        self.func.push_op(dest, op);
        op
    }

    /// Maps `v` through one instance map (outside-defined values pass
    /// through unchanged).
    fn mapped(map: &HashMap<Value, Value>, v: Value) -> Value {
        *map.get(&v).unwrap_or(&v)
    }

    /// Maps an operand list per instance and reports whether all instances
    /// agree (instance-invariance).
    fn mapped_all(maps: &[HashMap<Value, Value>], operands: &[Value]) -> (Vec<Vec<Value>>, bool) {
        let per: Vec<Vec<Value>> = maps
            .iter()
            .map(|m| operands.iter().map(|&v| Self::mapped(m, v)).collect())
            .collect();
        let invariant = per.iter().all(|p| *p == per[0]);
        (per, invariant)
    }

    fn interleave_region(
        &mut self,
        src: RegionId,
        dest: RegionId,
        maps: &mut [HashMap<Value, Value>],
        yield_mode: YieldMode,
    ) -> Result<(), InterleaveError> {
        let ops = self.func.region(src).ops.clone();
        for op_id in ops {
            let op = self.func.op(op_id).clone();
            match &op.kind {
                OpKind::Yield => {
                    let operands = match yield_mode {
                        YieldMode::Empty => Vec::new(),
                        YieldMode::Concat => maps
                            .iter()
                            .flat_map(|m| op.operands.iter().map(|&v| Self::mapped(m, v)))
                            .collect(),
                    };
                    self.emit(dest, OpKind::Yield, operands, vec![], vec![]);
                }
                OpKind::Barrier { level } => {
                    // Interleaving merges the instances' barriers into one
                    // (Fig. 10, left).
                    self.emit(
                        dest,
                        OpKind::Barrier { level: *level },
                        vec![],
                        vec![],
                        vec![],
                    );
                }
                OpKind::For => {
                    let (bounds, invariant) = Self::mapped_all(maps, &op.operands[..3]);
                    if invariant {
                        self.jam_for(op_id, dest, maps, &bounds[0])?;
                    } else {
                        self.duplicate(op_id, dest, maps)?;
                    }
                }
                OpKind::If => {
                    let (conds, invariant) = Self::mapped_all(maps, &op.operands);
                    if invariant {
                        self.jam_if(op_id, dest, maps, conds[0][0])?;
                    } else {
                        self.duplicate(op_id, dest, maps)?;
                    }
                }
                OpKind::While => {
                    // Unknown trip count: treated as a single statement and
                    // duplicated (§IV-A).
                    self.duplicate(op_id, dest, maps)?;
                }
                OpKind::Parallel { level } => {
                    let (ubs, invariant) = Self::mapped_all(maps, &op.operands);
                    if !invariant {
                        return Err(InterleaveError::new(
                            "nested parallel loop extents depend on the unrolled induction variable",
                        ));
                    }
                    self.jam_parallel(op_id, *level, dest, maps, &ubs[0])?;
                }
                OpKind::Alternatives { .. } => {
                    return Err(InterleaveError::new(
                        "alternatives must be coarsened per-region, not unrolled through",
                    ))
                }
                OpKind::Condition | OpKind::Return => {
                    return Err(InterleaveError::new(format!(
                        "unexpected {:?} inside a parallel loop body",
                        op.kind
                    )))
                }
                _ => {
                    // Straight-line operation: one clone per instance,
                    // grouped; instance-invariant pure ops are shared.
                    let (operands_per, invariant) = Self::mapped_all(maps, &op.operands);
                    if invariant && op.kind.is_pure() {
                        let tys: Vec<Type> = op
                            .results
                            .iter()
                            .map(|&r| self.func.value_type(r).clone())
                            .collect();
                        let new_op =
                            self.emit(dest, op.kind.clone(), operands_per[0].clone(), tys, vec![]);
                        let new_results = self.func.op(new_op).results.clone();
                        for m in maps.iter_mut() {
                            for (old, new) in op.results.iter().zip(&new_results) {
                                m.insert(*old, *new);
                            }
                        }
                    } else {
                        for m in maps.iter_mut() {
                            let cloned = clone_op(self.func, op_id, m);
                            self.func.push_op(dest, cloned);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Fuses the instances of a loop with invariant bounds (unroll-and-jam,
    /// Fig. 8): one loop, concatenated iteration arguments, interleaved body.
    fn jam_for(
        &mut self,
        op_id: OpId,
        dest: RegionId,
        maps: &mut [HashMap<Value, Value>],
        bounds: &[Value],
    ) -> Result<(), InterleaveError> {
        let op = self.func.op(op_id).clone();
        let old_body = op.regions[0];
        let old_args = self.func.region(old_body).args.clone();
        let n_iter = old_args.len() - 1;

        // Concatenated initial values, in instance-major order.
        let inits: Vec<Value> = maps
            .iter()
            .flat_map(|m| op.operands[3..].iter().map(|&v| Self::mapped(m, v)))
            .collect();
        let iter_types: Vec<Type> = op.operands[3..]
            .iter()
            .map(|&v| self.func.value_type(v).clone())
            .collect();

        let new_body = self.func.new_region();
        let new_iv = self.func.add_region_arg(new_body, Type::index());
        let mut new_args = Vec::new();
        for _ in 0..maps.len() {
            for ty in &iter_types {
                new_args.push(self.func.add_region_arg(new_body, ty.clone()));
            }
        }
        for (u, m) in maps.iter_mut().enumerate() {
            m.insert(old_args[0], new_iv);
            for i in 0..n_iter {
                m.insert(old_args[1 + i], new_args[u * n_iter + i]);
            }
        }
        self.interleave_region(old_body, new_body, maps, YieldMode::Concat)?;

        let mut operands = bounds.to_vec();
        operands.extend(inits);
        let result_types: Vec<Type> = (0..maps.len())
            .flat_map(|_| iter_types.iter().cloned())
            .collect();
        let new_op = self.emit(dest, OpKind::For, operands, result_types, vec![new_body]);
        let new_results = self.func.op(new_op).results.clone();
        for (u, m) in maps.iter_mut().enumerate() {
            for i in 0..n_iter {
                m.insert(op.results[i], new_results[u * n_iter + i]);
            }
        }
        Ok(())
    }

    /// Fuses the instances of a conditional with an invariant condition:
    /// one `if`, concatenated results, interleaved arms.
    fn jam_if(
        &mut self,
        op_id: OpId,
        dest: RegionId,
        maps: &mut [HashMap<Value, Value>],
        cond: Value,
    ) -> Result<(), InterleaveError> {
        let op = self.func.op(op_id).clone();
        let result_types: Vec<Type> = op
            .results
            .iter()
            .map(|&r| self.func.value_type(r).clone())
            .collect();
        let n = result_types.len();

        let mut new_regions = Vec::new();
        for &arm in &op.regions {
            let new_arm = self.func.new_region();
            self.interleave_region(arm, new_arm, maps, YieldMode::Concat)?;
            new_regions.push(new_arm);
        }
        let concat_types: Vec<Type> = (0..maps.len())
            .flat_map(|_| result_types.iter().cloned())
            .collect();
        let new_op = self.emit(dest, OpKind::If, vec![cond], concat_types, new_regions);
        let new_results = self.func.op(new_op).results.clone();
        for (u, m) in maps.iter_mut().enumerate() {
            for i in 0..n {
                m.insert(op.results[i], new_results[u * n + i]);
            }
        }
        Ok(())
    }

    /// Fuses the instances of a nested parallel loop (block coarsening jams
    /// the thread loop so each thread handles the workload of threads from
    /// different blocks, §V-B).
    fn jam_parallel(
        &mut self,
        op_id: OpId,
        level: ParLevel,
        dest: RegionId,
        maps: &mut [HashMap<Value, Value>],
        ubs: &[Value],
    ) -> Result<(), InterleaveError> {
        let op = self.func.op(op_id).clone();
        let old_body = op.regions[0];
        let old_args = self.func.region(old_body).args.clone();
        let new_body = self.func.new_region();
        let new_args: Vec<Value> = (0..old_args.len())
            .map(|_| self.func.add_region_arg(new_body, Type::index()))
            .collect();
        for m in maps.iter_mut() {
            for (old, new) in old_args.iter().zip(&new_args) {
                m.insert(*old, *new);
            }
        }
        self.interleave_region(old_body, new_body, maps, YieldMode::Empty)?;
        self.emit(
            dest,
            OpKind::Parallel { level },
            ubs.to_vec(),
            vec![],
            vec![new_body],
        );
        Ok(())
    }

    /// Clones an instance-variant nested operation once per instance. A
    /// barrier inside would be duplicated, which breaks its semantics
    /// (Fig. 10, right) — reject.
    fn duplicate(
        &mut self,
        op_id: OpId,
        dest: RegionId,
        maps: &mut [HashMap<Value, Value>],
    ) -> Result<(), InterleaveError> {
        for &region in &self.func.op(op_id).regions.clone() {
            if region_contains_barrier(self.func, region) {
                return Err(InterleaveError::new(
                    "a barrier inside instance-variant control flow would be duplicated",
                ));
            }
        }
        for m in maps.iter_mut() {
            let cloned = clone_op(self.func, op_id, m);
            self.func.push_op(dest, cloned);
        }
        Ok(())
    }
}

/// Unrolls the parallel loop `par_op` by `factors` (per dimension) and
/// interleaves the instances.
///
/// The loop's extent in each coarsened dimension becomes `ub / f` (floor
/// division): the transform covers `⌊ub/f⌋·f` iterations per dimension.
/// Callers must either guarantee divisibility (thread coarsening, §V-C) or
/// generate epilogue loops for the remainder (block coarsening).
///
/// # Errors
///
/// Returns an [`InterleaveError`] when a barrier would be duplicated
/// (§IV-B), when nested parallel extents depend on the unrolled induction
/// variable, or when `par_op` is not a parallel loop.
pub fn unroll_interleave(
    func: &mut Function,
    par_op: OpId,
    factors: [i64; 3],
    style: IndexingStyle,
) -> Result<(), InterleaveError> {
    let op = func.op(par_op).clone();
    let level = match op.kind {
        OpKind::Parallel { level } => level,
        ref other => {
            return Err(InterleaveError::new(format!(
                "expected a parallel loop, found {other:?}"
            )))
        }
    };
    let rank = op.operands.len();
    for (d, &f) in factors.iter().enumerate() {
        if f < 1 {
            return Err(InterleaveError::new("factors must be >= 1"));
        }
        if d >= rank && f != 1 {
            return Err(InterleaveError::new("factor given for a missing dimension"));
        }
    }
    let total: i64 = factors.iter().product();
    if total == 1 {
        return Ok(());
    }
    let parent = parent_region(func, par_op)
        .ok_or_else(|| InterleaveError::new("parallel op is not attached to the function"))?;
    let insert_at = func
        .region(parent)
        .ops
        .iter()
        .position(|&o| o == par_op)
        .expect("parent_region guarantees membership");

    // ---- new upper bounds, emitted before the parallel op ----
    let mut prefix_ops: Vec<OpId> = Vec::new();
    let mut new_ubs = Vec::with_capacity(rank);
    for (d, &f) in factors.iter().enumerate().take(rank) {
        if f == 1 {
            new_ubs.push(op.operands[d]);
            continue;
        }
        if let Some(c) = func.const_int_value(op.operands[d]) {
            let new_c = func.make_op(
                OpKind::ConstInt {
                    value: c / f,
                    ty: ScalarType::Index,
                },
                vec![],
                vec![Type::index()],
                vec![],
            );
            prefix_ops.push(new_c);
            new_ubs.push(func.result(new_c));
        } else {
            let cf = func.make_op(
                OpKind::ConstInt {
                    value: f,
                    ty: ScalarType::Index,
                },
                vec![],
                vec![Type::index()],
                vec![],
            );
            let div = func.make_op(
                OpKind::Binary(respec_ir::BinOp::Div),
                vec![op.operands[d], func.result(cf)],
                vec![Type::index()],
                vec![],
            );
            prefix_ops.push(cf);
            prefix_ops.push(div);
            new_ubs.push(func.result(div));
        }
    }
    for (i, p) in prefix_ops.into_iter().enumerate() {
        func.region_mut(parent).ops.insert(insert_at + i, p);
    }

    // ---- new body region with per-instance induction expressions ----
    let old_body = op.regions[0];
    let old_ivs = func.region(old_body).args.clone();
    let new_body = func.new_region();
    let new_ivs: Vec<Value> = (0..rank)
        .map(|_| func.add_region_arg(new_body, Type::index()))
        .collect();

    let n_instances = total as usize;
    let mut maps: Vec<HashMap<Value, Value>> = vec![HashMap::new(); n_instances];

    // Per-dimension shared base expressions.
    let mut bases: Vec<Value> = Vec::with_capacity(rank);
    for d in 0..rank {
        let f = factors[d];
        if f == 1 {
            bases.push(new_ivs[d]);
            continue;
        }
        match style {
            IndexingStyle::Contiguous => {
                let cf = func.make_op(
                    OpKind::ConstInt {
                        value: f,
                        ty: ScalarType::Index,
                    },
                    vec![],
                    vec![Type::index()],
                    vec![],
                );
                func.push_op(new_body, cf);
                let cf_v = func.result(cf);
                let mul = func.make_op(
                    OpKind::Binary(respec_ir::BinOp::Mul),
                    vec![new_ivs[d], cf_v],
                    vec![Type::index()],
                    vec![],
                );
                func.push_op(new_body, mul);
                bases.push(func.result(mul));
            }
            IndexingStyle::Strided => bases.push(new_ivs[d]),
        }
    }

    // Instance offsets: decompose the linear instance id with x fastest.
    for (u, map) in maps.iter_mut().enumerate() {
        let mut rem = u as i64;
        for d in 0..rank {
            let f = factors[d];
            let u_d = rem % f;
            rem /= f;
            if f == 1 || u_d == 0 {
                map.insert(old_ivs[d], bases[d]);
                continue;
            }
            let offset = match style {
                IndexingStyle::Contiguous => {
                    let c = func.make_op(
                        OpKind::ConstInt {
                            value: u_d,
                            ty: ScalarType::Index,
                        },
                        vec![],
                        vec![Type::index()],
                        vec![],
                    );
                    func.push_op(new_body, c);
                    func.result(c)
                }
                IndexingStyle::Strided => {
                    let c = func.make_op(
                        OpKind::ConstInt {
                            value: u_d,
                            ty: ScalarType::Index,
                        },
                        vec![],
                        vec![Type::index()],
                        vec![],
                    );
                    func.push_op(new_body, c);
                    let mul = func.make_op(
                        OpKind::Binary(respec_ir::BinOp::Mul),
                        vec![func.result(c), new_ubs[d]],
                        vec![Type::index()],
                        vec![],
                    );
                    func.push_op(new_body, mul);
                    func.result(mul)
                }
            };
            let add = func.make_op(
                OpKind::Binary(respec_ir::BinOp::Add),
                vec![bases[d], offset],
                vec![Type::index()],
                vec![],
            );
            func.push_op(new_body, add);
            map.insert(old_ivs[d], func.result(add));
        }
    }

    // ---- interleave the body ----
    let mut ix = Interleaver { func };
    ix.interleave_region(old_body, new_body, &mut maps, YieldMode::Empty)?;

    // ---- swap in the new region and bounds ----
    let operation = func.op_mut(par_op);
    operation.operands = new_ubs;
    operation.regions = vec![new_body];
    let _ = level;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use respec_ir::{parse_function, verify_function};

    fn thread_par(func: &Function) -> OpId {
        let launches = respec_ir::kernel::analyze_function(func).unwrap();
        launches[0].thread_par
    }

    fn block_par(func: &Function) -> OpId {
        let launches = respec_ir::kernel::analyze_function(func).unwrap();
        launches[0].block_par
    }

    const SIMPLE: &str = "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c32 = const 32 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c32, %c1, %c1) {
      %w = mul %bx, %c32 : index
      %i = add %w, %tx : index
      %v = load %m[%i] : f32
      %d = add %v, %v : f32
      store %d, %m[%i]
      yield
    }
    yield
  }
  return
}";

    #[test]
    fn thread_unroll_divides_extent_and_duplicates_memops() {
        let mut func = parse_function(SIMPLE).unwrap();
        let tp = thread_par(&func);
        unroll_interleave(&mut func, tp, [2, 1, 1], IndexingStyle::Strided).unwrap();
        verify_function(&func).unwrap();
        let launches = respec_ir::kernel::analyze_function(&func).unwrap();
        assert_eq!(launches[0].block_dims, vec![16, 1, 1]);
        // Two loads and two stores now.
        let mut loads = 0;
        let mut stores = 0;
        walk_ops(&func, func.body(), &mut |op| match func.op(op).kind {
            OpKind::Load => loads += 1,
            OpKind::Store => stores += 1,
            _ => {}
        });
        assert_eq!(loads, 2);
        assert_eq!(stores, 2);
    }

    #[test]
    fn block_unroll_keeps_thread_extent() {
        let mut func = parse_function(SIMPLE).unwrap();
        let bp = block_par(&func);
        unroll_interleave(&mut func, bp, [2, 1, 1], IndexingStyle::Contiguous).unwrap();
        verify_function(&func).unwrap();
        let launches = respec_ir::kernel::analyze_function(&func).unwrap();
        assert_eq!(
            launches[0].block_dims,
            vec![32, 1, 1],
            "thread loop must be jammed, not shrunk"
        );
        // The grid extent became gx/2 (a div op must exist).
        let text = func.to_string();
        assert!(
            text.contains("div"),
            "dynamic grid extent must be divided: {text}"
        );
    }

    #[test]
    fn factor_one_is_identity() {
        let mut func = parse_function(SIMPLE).unwrap();
        let before = func.to_string();
        let tp = thread_par(&func);
        unroll_interleave(&mut func, tp, [1, 1, 1], IndexingStyle::Strided).unwrap();
        assert_eq!(func.to_string(), before);
    }

    const WITH_BARRIER: &str =
        "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c32 = const 32 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    %sm = alloc() : memref<32xf32, shared>
    parallel<thread> (%tx, %ty, %tz) to (%c32, %c1, %c1) {
      %w = mul %bx, %c32 : index
      %i = add %w, %tx : index
      %v = load %m[%i] : f32
      store %v, %sm[%tx]
      barrier<thread>
      %r = load %sm[%tx] : f32
      store %r, %m[%i]
      yield
    }
    yield
  }
  return
}";

    #[test]
    fn barriers_are_merged_not_duplicated() {
        let mut func = parse_function(WITH_BARRIER).unwrap();
        let tp = thread_par(&func);
        unroll_interleave(&mut func, tp, [4, 1, 1], IndexingStyle::Strided).unwrap();
        verify_function(&func).unwrap();
        let mut barriers = 0;
        walk_ops(&func, func.body(), &mut |op| {
            if matches!(func.op(op).kind, OpKind::Barrier { .. }) {
                barriers += 1;
            }
        });
        assert_eq!(barriers, 1, "interleaved barriers must merge into one");
    }

    #[test]
    fn block_unroll_with_barrier_merges_and_duplicates_shared() {
        let mut func = parse_function(WITH_BARRIER).unwrap();
        let bp = block_par(&func);
        unroll_interleave(&mut func, bp, [2, 1, 1], IndexingStyle::Contiguous).unwrap();
        verify_function(&func).unwrap();
        let launches = respec_ir::kernel::analyze_function(&func).unwrap();
        // Shared allocation duplicated per merged block (§V-C).
        assert_eq!(launches[0].shared_allocs.len(), 2);
        assert_eq!(launches[0].shared_bytes(&func), 2 * 32 * 4);
        let mut barriers = 0;
        walk_ops(&func, func.body(), &mut |op| {
            if matches!(func.op(op).kind, OpKind::Barrier { .. }) {
                barriers += 1;
            }
        });
        assert_eq!(barriers, 1);
    }

    const BLOCK_VARIANT_CF_BARRIER: &str =
        "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c32 = const 32 : index
  %c1 = const 1 : index
  %c0 = const 0 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    %sm = alloc() : memref<32xf32, shared>
    parallel<thread> (%tx, %ty, %tz) to (%c32, %c1, %c1) {
      %cond = cmp gt %bx, %c0
      if %cond {
        store %tx, %sm, []
        yield
      }
      yield
    }
    yield
  }
  return
}";

    #[test]
    fn block_unroll_rejects_barrier_under_block_dependent_control_flow() {
        // Build via builder to keep the IR valid (the string above is not).
        let mut func = parse_function(
            "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c32 = const 32 : index
  %c1 = const 1 : index
  %c0 = const 0 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c32, %c1, %c1) {
      %cond = cmp gt %bx, %c0
      if %cond {
        barrier<thread>
        yield
      }
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        verify_function(&func).unwrap();
        let bp = block_par(&func);
        let err =
            unroll_interleave(&mut func, bp, [2, 1, 1], IndexingStyle::Contiguous).unwrap_err();
        assert!(err.message.contains("barrier"), "{err}");
        let _ = BLOCK_VARIANT_CF_BARRIER;
    }

    #[test]
    fn thread_unroll_jams_inner_loop_with_invariant_bounds() {
        let mut func = parse_function(
            "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>, %n: index) {
  %c32 = const 32 : index
  %c1 = const 1 : index
  %c0 = const 0 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c32, %c1, %c1) {
      %z = fconst 0.0 : f32
      %acc = for %j = %c0 to %n step %c1 iter (%a = %z) {
        %v = load %m[%j] : f32
        %nx = add %a, %v : f32
        yield %nx
      }
      %w = mul %bx, %c32 : index
      %i = add %w, %tx : index
      store %acc, %m[%i]
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        let tp = thread_par(&func);
        unroll_interleave(&mut func, tp, [2, 1, 1], IndexingStyle::Strided).unwrap();
        verify_function(&func).unwrap();
        // One jammed for with 2 iter args, not two loops.
        let mut fors = Vec::new();
        walk_ops(&func, func.body(), &mut |op| {
            if matches!(func.op(op).kind, OpKind::For) {
                fors.push(op);
            }
        });
        assert_eq!(fors.len(), 1, "invariant-bound loop must be jammed");
        assert_eq!(func.op(fors[0]).results.len(), 2);
    }

    #[test]
    fn thread_variant_loop_is_duplicated() {
        let mut func = parse_function(
            "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c32 = const 32 : index
  %c1 = const 1 : index
  %c0 = const 0 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c32, %c1, %c1) {
      for %j = %c0 to %tx step %c1 {
        %v = load %m[%j] : f32
        store %v, %m[%j]
        yield
      }
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        let tp = thread_par(&func);
        unroll_interleave(&mut func, tp, [2, 1, 1], IndexingStyle::Strided).unwrap();
        verify_function(&func).unwrap();
        let mut fors = 0;
        walk_ops(&func, func.body(), &mut |op| {
            if matches!(func.op(op).kind, OpKind::For) {
                fors += 1;
            }
        });
        assert_eq!(
            fors, 2,
            "trip count depends on %tx: the loop must be duplicated"
        );
    }

    #[test]
    fn invariant_pure_ops_are_shared() {
        let mut func = parse_function(SIMPLE).unwrap();
        let tp = thread_par(&func);
        unroll_interleave(&mut func, tp, [2, 1, 1], IndexingStyle::Strided).unwrap();
        // %w = mul %bx, %c32 is instance-invariant: must appear once.
        let mut muls_by_bx = 0;
        let launches = respec_ir::kernel::analyze_function(&func).unwrap();
        let region = func.op(launches[0].thread_par).regions[0];
        for &op in &func.region(region).ops {
            if matches!(func.op(op).kind, OpKind::Binary(respec_ir::BinOp::Mul)) {
                muls_by_bx += 1;
            }
        }
        // One shared `%bx*32`, plus one `1*new_ub` stride helper for the
        // second instance.
        assert!(
            muls_by_bx <= 2,
            "invariant mul must not be duplicated per instance"
        );
    }
}
