//! Thread and block coarsening as granularity variation (§V of the paper).
//!
//! Both transformations are instances of the nested parallel
//! unroll-and-interleave of [`crate::interleave`]:
//!
//! * **Thread coarsening** unrolls the thread-parallel loop with
//!   coalescing-friendly strided indexing. Factors must divide the (static)
//!   block dimensions — remainder threads inside a block would break warp
//!   fullness and convergence (§V-C).
//! * **Block coarsening** unrolls the block-parallel loop with contiguous
//!   indexing and *duplicates shared memory allocations* (automatic: they
//!   live in the unrolled region). Any factor is allowed: *epilogue* grids
//!   finish the remainder blocks, which is how the paper reaches prime
//!   factors like the lud optimum of 7.

use std::collections::HashMap;
use std::fmt;

use respec_ir::kernel::{analyze_launch, Launch};
use respec_ir::walk::clone_op;
use respec_ir::{BinOp, Function, OpId, OpKind, ParLevel, RegionId, ScalarType, Type, Value};

use crate::interleave::{parent_region, unroll_interleave, IndexingStyle, InterleaveError};

/// A combined coarsening configuration: per-dimension block and thread
/// factors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CoarsenConfig {
    /// Block (grid-level) factors in x, y, z.
    pub block: [i64; 3],
    /// Thread (block-level) factors in x, y, z.
    pub thread: [i64; 3],
}

impl CoarsenConfig {
    /// The identity configuration.
    pub fn identity() -> CoarsenConfig {
        CoarsenConfig {
            block: [1, 1, 1],
            thread: [1, 1, 1],
        }
    }

    /// Total block factor.
    pub fn block_total(&self) -> i64 {
        self.block.iter().product()
    }

    /// Total thread factor.
    pub fn thread_total(&self) -> i64 {
        self.thread.iter().product()
    }

    /// `true` if this configuration performs no coarsening.
    pub fn is_identity(&self) -> bool {
        self.block_total() == 1 && self.thread_total() == 1
    }
}

impl fmt::Display for CoarsenConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block({},{},{})·thread({},{},{})",
            self.block[0],
            self.block[1],
            self.block[2],
            self.thread[0],
            self.thread[1],
            self.thread[2]
        )
    }
}

/// Error produced by the coarsening transformations.
#[derive(Clone, Debug, PartialEq)]
pub struct CoarsenError {
    /// Human-readable reason.
    pub message: String,
}

impl CoarsenError {
    fn new(message: impl Into<String>) -> CoarsenError {
        CoarsenError {
            message: message.into(),
        }
    }

    /// Creates an error from a message (for sibling modules).
    pub fn from_message(message: impl Into<String>) -> CoarsenError {
        CoarsenError::new(message)
    }
}

impl fmt::Display for CoarsenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "coarsening failed: {}", self.message)
    }
}

impl std::error::Error for CoarsenError {}

impl From<InterleaveError> for CoarsenError {
    fn from(e: InterleaveError) -> CoarsenError {
        CoarsenError { message: e.message }
    }
}

/// Applies thread coarsening to the thread-parallel loop of `launch`.
///
/// # Errors
///
/// Fails if a factor does not divide its block dimension, if the coarsened
/// block would be empty, or if interleaving is illegal.
pub fn thread_coarsen(
    func: &mut Function,
    launch: &Launch,
    factors: [i64; 3],
) -> Result<(), CoarsenError> {
    for (d, &f) in factors.iter().enumerate() {
        if f < 1 {
            return Err(CoarsenError::new("factors must be >= 1"));
        }
        let dim = launch.block_dims.get(d).copied().unwrap_or(1);
        if dim % f != 0 {
            return Err(CoarsenError::new(format!(
                "thread factor {f} does not divide block dimension {dim} (d{d})"
            )));
        }
    }
    unroll_interleave(func, launch.thread_par, factors, IndexingStyle::Strided)?;
    Ok(())
}

/// Applies block coarsening to the block-parallel loop of `launch`,
/// generating epilogue grids for the remainder blocks of each coarsened
/// dimension (so any factor is legal size-wise).
///
/// # Errors
///
/// Fails if interleaving is illegal (a barrier would be duplicated, §V-B).
pub fn block_coarsen(
    func: &mut Function,
    launch: &Launch,
    factors: [i64; 3],
) -> Result<(), CoarsenError> {
    let total: i64 = factors.iter().product();
    if total == 1 {
        return Ok(());
    }
    let op = func.op(launch.block_par).clone();
    let rank = op.operands.len();
    let old_ubs = op.operands.clone();
    let old_region = op.regions[0];

    // Clone the original region as the epilogue template *before* the main
    // loop is transformed.
    let mut template_map = HashMap::new();
    let template = respec_ir::walk::clone_region(func, old_region, &mut template_map);
    // The template's references to outer values are untouched; its args were
    // remapped. Record the remapped arg list.
    let template_args = func.region(template).args.clone();

    // Transform the main loop first: if it is illegal, nothing else changed
    // (the detached template region is simply never referenced).
    unroll_interleave(func, launch.block_par, factors, IndexingStyle::Contiguous)?;

    // Insert epilogues after the main loop. Epilogue for dimension k covers:
    //   dims j < k : [0, ⌊ub_j/f_j⌋·f_j)   (the main-covered range)
    //   dim  k     : [⌊ub_k/f_k⌋·f_k, ub_k)
    //   dims j > k : [0, ub_j)
    // which tiles the iteration space exactly once together with the main
    // coarsened grid.
    let parent = parent_region(func, launch.block_par)
        .ok_or_else(|| CoarsenError::new("block-parallel op is not attached"))?;
    let mut insert_at = func
        .region(parent)
        .ops
        .iter()
        .position(|&o| o == launch.block_par)
        .expect("op is in its parent region")
        + 1;

    // Helper to append an op into the parent region at the running cursor.
    let mut emit_parent = |func: &mut Function, op: OpId| {
        func.region_mut(parent).ops.insert(insert_at, op);
        insert_at += 1;
    };

    let mk_const = |func: &mut Function, v: i64| {
        func.make_op(
            OpKind::ConstInt {
                value: v,
                ty: ScalarType::Index,
            },
            vec![],
            vec![Type::index()],
            vec![],
        )
    };
    let mk_bin = |func: &mut Function, b: BinOp, l: Value, r: Value| {
        func.make_op(OpKind::Binary(b), vec![l, r], vec![Type::index()], vec![])
    };

    // Main-covered extent per dimension: ⌊ub/f⌋·f (SSA values).
    let mut covered: Vec<Option<Value>> = vec![None; rank];
    for d in 0..rank {
        if factors[d] == 1 {
            continue;
        }
        let cf = mk_const(func, factors[d]);
        emit_parent(func, cf);
        let cf_v = func.result(cf);
        let div = mk_bin(func, BinOp::Div, old_ubs[d], cf_v);
        emit_parent(func, div);
        let mul = mk_bin(func, BinOp::Mul, func.result(div), cf_v);
        emit_parent(func, mul);
        covered[d] = Some(func.result(mul));
    }

    for k in 0..rank {
        if factors[k] == 1 {
            continue;
        }
        let covered_k = covered[k].expect("computed above for coarsened dims");
        // Remainder extent for dim k.
        let rem = mk_bin(func, BinOp::Sub, old_ubs[k], covered_k);
        emit_parent(func, rem);
        let rem_v = func.result(rem);

        // Epilogue upper bounds.
        let mut epi_ubs = Vec::with_capacity(rank);
        for (j, &old_ub) in old_ubs.iter().enumerate().take(rank) {
            if j < k {
                epi_ubs.push(covered[j].unwrap_or(old_ub));
            } else if j == k {
                epi_ubs.push(rem_v);
            } else {
                epi_ubs.push(old_ub);
            }
        }

        // Epilogue region: fresh ivs; dim k is offset by the covered extent.
        let mut map = HashMap::new();
        let region = func.new_region();
        for (d, &template_arg) in template_args.iter().enumerate() {
            let arg = func.add_region_arg(region, Type::index());
            if d == k {
                let add = mk_bin(func, BinOp::Add, arg, covered_k);
                func.push_op(region, add);
                map.insert(template_arg, func.result(add));
            } else {
                map.insert(template_arg, arg);
            }
        }
        for t_op in func.region(template).ops.clone() {
            let cloned = clone_op(func, t_op, &mut map);
            func.push_op(region, cloned);
        }
        let epi = func.make_op(
            OpKind::Parallel {
                level: ParLevel::Block,
            },
            epi_ubs,
            vec![],
            vec![region],
        );
        emit_parent(func, epi);
    }
    Ok(())
}

/// Validates `cfg` against every launch of `func` without mutating it.
///
/// This is exactly the set of checks [`coarsen_function`] performs before
/// its first rewrite — missing block-parallel loop, launch-analysis
/// failures, factor positivity and thread-factor divisibility — producing
/// byte-identical messages, so callers holding a borrowed function can
/// prune illegal configurations before paying for a clone. A passing
/// precheck does **not** guarantee [`coarsen_function`] succeeds: legality
/// that only surfaces mid-rewrite (e.g. barrier duplication during
/// unroll-and-interleave) is still discovered while transforming. For the
/// identity configuration a passing precheck *is* exhaustive, because
/// identity coarsening performs no rewrite at all.
///
/// # Errors
///
/// The first error [`coarsen_function`] would report from its pre-rewrite
/// checks, in the same order.
pub fn coarsen_precheck(func: &Function, cfg: CoarsenConfig) -> Result<(), CoarsenError> {
    let block_pars = respec_ir::kernel::block_parallels_in(func, func.body());
    if block_pars.is_empty() {
        return Err(CoarsenError::new("region contains no block-parallel loop"));
    }
    for bp in block_pars {
        let launch = analyze_launch(func, bp).map_err(|e| CoarsenError::new(e.to_string()))?;
        for (d, &f) in cfg.thread.iter().enumerate() {
            if f < 1 {
                return Err(CoarsenError::new("factors must be >= 1"));
            }
            let dim = launch.block_dims.get(d).copied().unwrap_or(1);
            if dim % f != 0 {
                return Err(CoarsenError::new(format!(
                    "thread factor {f} does not divide block dimension {dim} (d{d})"
                )));
            }
        }
        // Block factors are only inspected when block coarsening actually
        // runs: `block_coarsen` no-ops on a factor *product* of one before
        // any validation, and the precheck must not reject what it accepts.
        if cfg.block.iter().product::<i64>() != 1 && cfg.block.iter().any(|&f| f < 1) {
            return Err(CoarsenError::new("factors must be >= 1"));
        }
    }
    Ok(())
}

/// Applies a combined configuration to every launch of a kernel function,
/// thread factors first (so block coarsening jams the already-coarsened
/// thread loop).
///
/// # Errors
///
/// Propagates the first illegal-coarsening error; the function may be left
/// partially transformed, so callers should work on a clone (the
/// [`crate::alternatives`] flow does).
pub fn coarsen_function(func: &mut Function, cfg: CoarsenConfig) -> Result<(), CoarsenError> {
    let body = func.body();
    coarsen_function_region(func, body, cfg)
}

/// Applies a combined configuration to every launch found under `region`
/// (used by the alternatives flow to coarsen one region of the multi-version
/// op).
///
/// # Errors
///
/// See [`coarsen_function`].
pub fn coarsen_function_region(
    func: &mut Function,
    region: RegionId,
    cfg: CoarsenConfig,
) -> Result<(), CoarsenError> {
    let block_pars = respec_ir::kernel::block_parallels_in(func, region);
    if block_pars.is_empty() {
        return Err(CoarsenError::new("region contains no block-parallel loop"));
    }
    for bp in block_pars {
        let launch = analyze_launch(func, bp).map_err(|e| CoarsenError::new(e.to_string()))?;
        thread_coarsen(func, &launch, cfg.thread)?;
        // Re-analyze: thread coarsening rebuilt the thread loop.
        let launch = analyze_launch(func, bp).map_err(|e| CoarsenError::new(e.to_string()))?;
        block_coarsen(func, &launch, cfg.block)?;
    }
    Ok(())
}

/// Helper mirroring the region of a parallel op (used by tests and the
/// alternatives flow).
pub fn body_region(func: &Function, par: OpId) -> RegionId {
    func.op(par).regions[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use respec_ir::{parse_function, verify_function};

    const KERNEL: &str = "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c64 = const 64 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    %sm = alloc() : memref<64xf32, shared>
    parallel<thread> (%tx, %ty, %tz) to (%c64, %c1, %c1) {
      %w = mul %bx, %c64 : index
      %i = add %w, %tx : index
      %v = load %m[%i] : f32
      store %v, %sm[%tx]
      barrier<thread>
      %r = load %sm[%tx] : f32
      %d = add %r, %r : f32
      store %d, %m[%i]
      yield
    }
    yield
  }
  return
}";

    #[test]
    fn precheck_agrees_with_coarsen_on_prevalidated_errors() {
        // Every error coarsen_function raises before its first rewrite must
        // come out of the borrowed precheck with the identical message, and
        // configurations the precheck passes must not fail those same
        // checks when applied for real.
        let cases = [
            CoarsenConfig::identity(),
            CoarsenConfig {
                block: [1, 1, 1],
                thread: [4, 1, 1],
            },
            CoarsenConfig {
                block: [2, 1, 1],
                thread: [3, 1, 1], // 3 does not divide 64
            },
            CoarsenConfig {
                block: [1, 1, 1],
                thread: [0, 1, 1], // factor < 1
            },
            CoarsenConfig {
                block: [-1, -1, 1], // product 1: block_coarsen no-ops
                thread: [1, 1, 1],
            },
        ];
        let pristine = parse_function(KERNEL).unwrap();
        for cfg in cases {
            let pre = coarsen_precheck(&pristine, cfg);
            let mut func = pristine.clone();
            let real = coarsen_function(&mut func, cfg);
            match (pre, real) {
                (Ok(()), Ok(())) => {}
                (Err(p), Err(r)) => assert_eq!(p.message, r.message, "{cfg:?}"),
                (p, r) => panic!("precheck/coarsen disagree for {cfg:?}: {p:?} vs {r:?}"),
            }
        }
        // A function with no block-parallel loop fails both ways.
        let flat = parse_function("func @f(%x: index) {\n  return\n}").unwrap();
        let pre = coarsen_precheck(&flat, CoarsenConfig::identity()).unwrap_err();
        let real = coarsen_function(&mut flat.clone(), CoarsenConfig::identity()).unwrap_err();
        assert_eq!(pre.message, real.message);
    }

    #[test]
    fn thread_coarsen_requires_divisors() {
        let mut func = parse_function(KERNEL).unwrap();
        let launch = respec_ir::kernel::analyze_function(&func)
            .unwrap()
            .remove(0);
        let err = thread_coarsen(&mut func, &launch, [3, 1, 1]).unwrap_err();
        assert!(err.message.contains("divide"));
    }

    #[test]
    fn thread_coarsen_shrinks_block() {
        let mut func = parse_function(KERNEL).unwrap();
        let launch = respec_ir::kernel::analyze_function(&func)
            .unwrap()
            .remove(0);
        thread_coarsen(&mut func, &launch, [4, 1, 1]).unwrap();
        verify_function(&func).unwrap();
        let launch = respec_ir::kernel::analyze_function(&func)
            .unwrap()
            .remove(0);
        assert_eq!(launch.block_dims, vec![16, 1, 1]);
        assert_eq!(
            launch.shared_allocs.len(),
            1,
            "thread coarsening keeps shared memory"
        );
    }

    #[test]
    fn block_coarsen_emits_epilogue() {
        let mut func = parse_function(KERNEL).unwrap();
        let launch = respec_ir::kernel::analyze_function(&func)
            .unwrap()
            .remove(0);
        block_coarsen(&mut func, &launch, [7, 1, 1]).unwrap();
        verify_function(&func).unwrap();
        let launches = respec_ir::kernel::analyze_function(&func).unwrap();
        assert_eq!(launches.len(), 2, "main + one epilogue grid");
        // Main grid duplicated the shared allocation 7×.
        assert_eq!(launches[0].shared_allocs.len(), 7);
        assert_eq!(
            launches[1].shared_allocs.len(),
            1,
            "epilogue is uncoarsened"
        );
    }

    #[test]
    fn block_coarsen_multi_dim_epilogues() {
        let mut func = parse_function(
            "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c16 = const 16 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c16, %c16, %c1) {
      %r = mul %by, %c16 : index
      %row = add %r, %ty : index
      %c = mul %bx, %c16 : index
      %col = add %c, %tx : index
      %v = load %m[%col] : f32
      store %v, %m[%row]
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        let launch = respec_ir::kernel::analyze_function(&func)
            .unwrap()
            .remove(0);
        block_coarsen(&mut func, &launch, [2, 3, 1]).unwrap();
        verify_function(&func).unwrap();
        let launches = respec_ir::kernel::analyze_function(&func).unwrap();
        assert_eq!(launches.len(), 3, "main + one epilogue per coarsened dim");
    }

    #[test]
    fn combined_coarsening_applies_both() {
        let mut func = parse_function(KERNEL).unwrap();
        coarsen_function(
            &mut func,
            CoarsenConfig {
                block: [2, 1, 1],
                thread: [2, 1, 1],
            },
        )
        .unwrap();
        verify_function(&func).unwrap();
        let launches = respec_ir::kernel::analyze_function(&func).unwrap();
        assert_eq!(launches[0].block_dims, vec![32, 1, 1]);
        assert_eq!(launches[0].shared_allocs.len(), 2);
    }

    #[test]
    fn identity_config_is_noop() {
        let mut func = parse_function(KERNEL).unwrap();
        let before = func.to_string();
        coarsen_function(&mut func, CoarsenConfig::identity()).unwrap();
        assert_eq!(func.to_string(), before);
    }

    #[test]
    fn config_display_and_totals() {
        let cfg = CoarsenConfig {
            block: [4, 2, 1],
            thread: [2, 1, 1],
        };
        assert_eq!(cfg.block_total(), 8);
        assert_eq!(cfg.thread_total(), 2);
        assert!(!cfg.is_identity());
        assert_eq!(cfg.to_string(), "block(4,2,1)·thread(2,1,1)");
    }
}
