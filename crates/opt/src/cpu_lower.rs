//! GPU-to-CPU lowering: block/thread parallelism onto cores × SIMD lanes.
//!
//! Reproduces the transpilation recipe of "High-Performance GPU-to-CPU
//! Transpilation and Optimization via High-Level Parallel Constructs"
//! (Moses/Ivanov et al., PAPERS.md) at the IR level:
//!
//! * the **block**-parallel loop is left intact — blocks are the unit the
//!   CPU target model maps onto cores (`sm_count` = cores), and coarsening
//!   factors become per-core tile sizes exactly as on the GPU;
//! * the **thread**-parallel loop of width `B` is rewritten to width
//!   `W = min(simd_lanes, B)` with each lane running a sequential tile
//!   loop `for t in lane, lane+W, .. < B` — lane-strided so that at every
//!   tile step adjacent lanes touch adjacent elements, i.e. the natural
//!   vectorizable/unit-stride schedule for a SIMD unit;
//! * **shared memory** is demoted to `local` (stack / private-cache
//!   resident) buffers — a CPU core's "shared memory" is just its cache;
//! * **barriers** become loop fission: the thread body is split at every
//!   top-level `barrier<thread>` into consecutive tile loops, with
//!   scalar values that cross a fission cut spilled to per-thread `local`
//!   buffers (`memref<B x ty, local>`) and constants rematerialized.
//!
//! Kernels the fission rewrite cannot prove safe — barriers nested under
//! control flow, block-level barriers, or a non-scalar value crossing a
//! cut — take the **fallback tier**: the thread loop is left at full
//! width (the simulator's phase-wise lock-step execution models a
//! fiber-per-thread schedule) and only the shared→local demotion applies.
//!
//! Both tiers preserve the launch invariants `analyze_launch` checks, so
//! the lowered IR flows through the unchanged tuner, occupancy model and
//! interpreter. Fission only applies to race-free kernels (the tuner's
//! analyze gate runs first), whose results are independent of execution
//! order within a barrier-delimited phase — so GPU-sim and CPU-sim
//! execution produce bit-identical buffers (`cpu_differential.rs`).

use std::collections::{HashMap, HashSet};

use respec_ir::kernel::{analyze_function, Launch};
use respec_ir::walk::{clone_op, walk_ops};
use respec_ir::{
    BinOp, Function, MemRefType, MemSpace, Module, OpId, OpKind, ParLevel, RegionId, ScalarType,
    Type, Value,
};

use crate::interleave::{parent_region, region_contains_barrier};

/// Parameters of the CPU lowering, bridged from a CPU target model by the
/// tuning engine (this crate deliberately does not depend on `respec-sim`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuLoweringParams {
    /// SIMD lane count of the target (`TargetModel::exec_width`); the
    /// lowered thread loop has at most this many parallel iterations.
    pub lanes: i64,
}

/// What the lowering did, for tests, traces and bench reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuLowerSummary {
    /// Launches whose thread loop was tiled (and possibly fissioned).
    pub fissioned: usize,
    /// Launches left at full thread width (fiber-style fallback tier).
    pub fallback: usize,
    /// `shared` allocations demoted to `local`.
    pub demoted_shared: usize,
    /// Cross-fission scalar values spilled to per-thread buffers.
    pub spills: usize,
}

/// Lowers every launch of `func` for a multicore CPU target, in place.
///
/// Infallible by design: launches the fission rewrite cannot handle take
/// the fallback tier, and a function without analyzable launches is left
/// untouched (the tuner's prepare stage has already gated analyzability).
pub fn lower_function_to_cpu(func: &mut Function, params: &CpuLoweringParams) -> CpuLowerSummary {
    let mut summary = CpuLowerSummary::default();
    let launches = match analyze_function(func) {
        Ok(l) => l,
        Err(_) => return summary,
    };
    for launch in &launches {
        lower_launch(func, launch, params, &mut summary);
    }
    summary
}

/// Lowers every function of `module`, returning the lowered module (the
/// input is untouched — callers keep the GPU-shaped module for other
/// targets).
pub fn lower_module_to_cpu(module: &Module, params: &CpuLoweringParams) -> Module {
    let mut out = module.clone();
    for func in out.functions_mut() {
        lower_function_to_cpu(func, params);
    }
    out
}

fn lower_launch(
    func: &mut Function,
    launch: &Launch,
    params: &CpuLoweringParams,
    summary: &mut CpuLowerSummary,
) {
    // Both tiers: shared memory becomes core-private (stack/L1-resident)
    // storage. After this no `shared` buffer remains under the launch, so
    // the analyzer's shared-memory race gate is trivially clean.
    let block_region = func.op(launch.block_par).regions[0];
    summary.demoted_shared += demote_shared_allocs(func, block_region);

    match fission_plan(func, launch) {
        Some(segments) => {
            fission_launch(func, launch, &segments, params, summary);
            summary.fissioned += 1;
        }
        None => summary.fallback += 1,
    }
}

/// Demotes every `alloc : memref<…, shared>` under `region` to `local`.
fn demote_shared_allocs(func: &mut Function, region: RegionId) -> usize {
    let mut shared = Vec::new();
    walk_ops(func, region, &mut |op| {
        if matches!(
            func.op(op).kind,
            OpKind::Alloc {
                space: MemSpace::Shared
            }
        ) {
            shared.push(op);
        }
    });
    for &op in &shared {
        let result = func.op(op).results[0];
        let old = func
            .value_type(result)
            .as_memref()
            .expect("alloc result is a memref")
            .clone();
        let new_ty = MemRefType::new(old.elem, old.shape.clone(), MemSpace::Local);
        func.replace_value_type(result, Type::MemRef(new_ty));
        func.op_mut(op).kind = OpKind::Alloc {
            space: MemSpace::Local,
        };
    }
    shared.len()
}

/// Splits the thread region's top-level ops into barrier-delimited
/// segments, or returns `None` if the launch must take the fallback tier.
///
/// Fallback triggers: a barrier nested under control flow (fission would
/// change how many times it executes), a block-level barrier, or a
/// non-scalar value crossing a fission cut (memrefs cannot be spilled).
fn fission_plan(func: &Function, launch: &Launch) -> Option<Vec<Vec<OpId>>> {
    let thread_region = func.op(launch.thread_par).regions[0];
    let top_ops = func.region(thread_region).ops.clone();

    let mut segments: Vec<Vec<OpId>> = vec![Vec::new()];
    for &op in &top_ops {
        match &func.op(op).kind {
            OpKind::Barrier {
                level: ParLevel::Thread,
            } => segments.push(Vec::new()),
            OpKind::Barrier {
                level: ParLevel::Block,
            } => return None,
            OpKind::Yield => {}
            _ => {
                for &r in &func.op(op).regions {
                    if region_contains_barrier(func, r) {
                        return None;
                    }
                }
                segments.last_mut().expect("non-empty").push(op);
            }
        }
    }

    // Every value crossing a segment boundary must be spillable (scalar)
    // or rematerializable (constant).
    if segments.len() > 1 {
        let def_seg = top_level_def_segments(func, &segments);
        for (si, seg) in segments.iter().enumerate() {
            for v in segment_uses(func, seg) {
                let Some(&ds) = def_seg.get(&v) else { continue };
                if ds < si && func.value_type(v).as_scalar().is_none() {
                    return None;
                }
            }
        }
    }
    Some(segments)
}

/// Maps each top-level result value to the index of its defining segment.
fn top_level_def_segments(func: &Function, segments: &[Vec<OpId>]) -> HashMap<Value, usize> {
    let mut def_seg = HashMap::new();
    for (si, seg) in segments.iter().enumerate() {
        for &op in seg {
            for &r in &func.op(op).results {
                def_seg.insert(r, si);
            }
        }
    }
    def_seg
}

/// Every value read anywhere inside a segment's op trees.
fn segment_uses(func: &Function, seg: &[OpId]) -> HashSet<Value> {
    let mut uses = HashSet::new();
    for &op in seg {
        uses.extend(func.op(op).operands.iter().copied());
        for &r in &func.op(op).regions {
            walk_ops(func, r, &mut |nested| {
                uses.extend(func.op(nested).operands.iter().copied());
            });
        }
    }
    uses
}

fn mk_index_const(func: &mut Function, v: i64) -> OpId {
    func.make_op(
        OpKind::ConstInt {
            value: v,
            ty: ScalarType::Index,
        },
        vec![],
        vec![Type::index()],
        vec![],
    )
}

fn mk_index_bin(func: &mut Function, b: BinOp, l: Value, r: Value) -> OpId {
    func.make_op(OpKind::Binary(b), vec![l, r], vec![Type::index()], vec![])
}

/// Rewrites the thread loop of `launch` from width `B = ∏ block_dims` to
/// width `W = min(lanes, B)`, with each barrier-delimited segment becoming
/// a lane-strided tile loop `for t in (lane, B, W)`.
fn fission_launch(
    func: &mut Function,
    launch: &Launch,
    segments: &[Vec<OpId>],
    params: &CpuLoweringParams,
    summary: &mut CpuLowerSummary,
) {
    let thread_region = func.op(launch.thread_par).regions[0];
    let old_args = func.region(thread_region).args.clone();
    let dims = launch.block_dims.clone();
    let b_total: i64 = dims.iter().product();
    let w = params.lanes.max(1).min(b_total);

    // Insertion cursor in the block region, just before the thread loop:
    // the new width constant and the spill buffers live here, so the lane
    // region stays allocation-free (and warp-vectorizable in the
    // simulator) while spill buffers are allocated once per block.
    let block_region = parent_region(func, launch.thread_par).expect("thread loop is attached");
    let mut insert_at = func
        .region(block_region)
        .ops
        .iter()
        .position(|&o| o == launch.thread_par)
        .expect("thread loop is in the block region");
    let mut emit_block = |func: &mut Function, op: OpId| {
        func.region_mut(block_region).ops.insert(insert_at, op);
        insert_at += 1;
    };

    let w_op = mk_index_const(func, w);
    emit_block(func, w_op);
    let w_val = func.result(w_op);

    // Cross-segment values, in deterministic definition order. Constants
    // are rematerialized in each consuming segment; everything else gets a
    // per-thread spill slot.
    let seg_uses: Vec<HashSet<Value>> = segments.iter().map(|s| segment_uses(func, s)).collect();
    let mut crossing: Vec<(Value, usize)> = Vec::new();
    for (si, seg) in segments.iter().enumerate() {
        for &op in seg {
            for &v in &func.op(op).results {
                if seg_uses
                    .iter()
                    .enumerate()
                    .any(|(sj, uses)| sj > si && uses.contains(&v))
                {
                    crossing.push((v, si));
                }
            }
        }
    }
    let remat: HashSet<Value> = crossing
        .iter()
        .filter(|&&(v, si)| {
            let op = segments[si]
                .iter()
                .copied()
                .find(|&o| func.op(o).results.contains(&v))
                .expect("crossing value has a defining op");
            matches!(
                func.op(op).kind,
                OpKind::ConstInt { .. } | OpKind::ConstFloat { .. }
            )
        })
        .map(|&(v, _)| v)
        .collect();
    let mut spill_buf: HashMap<Value, Value> = HashMap::new();
    for &(v, _) in &crossing {
        if remat.contains(&v) {
            continue;
        }
        let elem = func
            .value_type(v)
            .as_scalar()
            .expect("fission_plan admits only scalar crossings");
        let buf_ty = MemRefType::new(elem, vec![b_total], MemSpace::Local);
        let alloc = func.make_op(
            OpKind::Alloc {
                space: MemSpace::Local,
            },
            vec![],
            vec![Type::MemRef(buf_ty)],
            vec![],
        );
        emit_block(func, alloc);
        spill_buf.insert(v, func.result(alloc));
        summary.spills += 1;
    }
    let defining_op = |func: &Function, v: Value, si: usize| {
        segments[si]
            .iter()
            .copied()
            .find(|&o| func.op(o).results.contains(&v))
            .expect("crossing value has a defining op")
    };

    // The new thread region: one lane argument, one tile loop per segment,
    // barriers re-emitted between consecutive tile loops (top-level in the
    // lane region, hence trivially uniform for the divergence checker).
    let lane_region = func.new_region();
    let lane = func.add_region_arg(lane_region, Type::index());
    let bt_op = mk_index_const(func, b_total);
    func.push_op(lane_region, bt_op);
    let bt_val = func.result(bt_op);

    for (si, seg) in segments.iter().enumerate() {
        if si > 0 {
            let bar = func.make_op(
                OpKind::Barrier {
                    level: ParLevel::Thread,
                },
                vec![],
                vec![],
                vec![],
            );
            func.push_op(lane_region, bar);
        }

        let body = func.new_region();
        let t = func.add_region_arg(body, Type::index());
        let mut map: HashMap<Value, Value> = HashMap::new();
        build_thread_ids(func, body, t, &dims, &old_args, &mut map);

        // Incoming values: rematerialize constants, reload spills.
        for &(v, ds) in &crossing {
            if ds >= si || !seg_uses[si].contains(&v) {
                continue;
            }
            if remat.contains(&v) {
                let def = defining_op(func, v, ds);
                let cloned = clone_op(func, def, &mut map);
                func.push_op(body, cloned);
            } else {
                let buf = spill_buf[&v];
                let ty = func.value_type(v).clone();
                let load = func.make_op(OpKind::Load, vec![buf, t], vec![ty], vec![]);
                func.push_op(body, load);
                map.insert(v, func.result(load));
            }
        }

        for &op in seg {
            let results = func.op(op).results.clone();
            let cloned = clone_op(func, op, &mut map);
            func.push_op(body, cloned);
            for v in results {
                if let Some(&buf) = spill_buf.get(&v) {
                    let stored = map[&v];
                    let store = func.make_op(OpKind::Store, vec![stored, buf, t], vec![], vec![]);
                    func.push_op(body, store);
                }
            }
        }

        let yld = func.make_op(OpKind::Yield, vec![], vec![], vec![]);
        func.push_op(body, yld);
        let tile = func.make_op(OpKind::For, vec![lane, bt_val, w_val], vec![], vec![body]);
        func.push_op(lane_region, tile);
    }
    let yld = func.make_op(OpKind::Yield, vec![], vec![], vec![]);
    func.push_op(lane_region, yld);

    // Swap the rewritten region in: the thread loop keeps its identity
    // (OpId, level) but now spans W lanes. `analyze_launch`'s invariants
    // hold — one thread loop, constant positive extent.
    let tp = func.op_mut(launch.thread_par);
    tp.operands = vec![w_val];
    tp.regions = vec![lane_region];
}

/// Seeds `map` with the original thread ids `(tx, ty, tz)` recomputed from
/// the flat thread index `t`: `id_d = (t / ∏ earlier dims) % dim_d`, with
/// unit dims pinned to 0 and the topmost non-unit dim skipping the `%`.
fn build_thread_ids(
    func: &mut Function,
    body: RegionId,
    t: Value,
    dims: &[i64],
    old_args: &[Value],
    map: &mut HashMap<Value, Value>,
) {
    let b_total: i64 = dims.iter().product();
    let mut zero: Option<Value> = None;
    let mut stride = 1i64;
    for (d, &arg) in old_args.iter().enumerate() {
        let extent = dims.get(d).copied().unwrap_or(1);
        let id = if extent == 1 {
            match zero {
                Some(z) => z,
                None => {
                    let c = mk_index_const(func, 0);
                    func.push_op(body, c);
                    let z = func.result(c);
                    zero = Some(z);
                    z
                }
            }
        } else {
            let quotient = if stride == 1 {
                t
            } else {
                let c = mk_index_const(func, stride);
                func.push_op(body, c);
                let div = mk_index_bin(func, BinOp::Div, t, func.result(c));
                func.push_op(body, div);
                func.result(div)
            };
            if stride * extent == b_total {
                quotient
            } else {
                let c = mk_index_const(func, extent);
                func.push_op(body, c);
                let rem = mk_index_bin(func, BinOp::Rem, quotient, func.result(c));
                func.push_op(body, rem);
                func.result(rem)
            }
        };
        map.insert(arg, id);
        stride *= extent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respec_ir::kernel::analyze_function as launches_of;
    use respec_ir::{parse_function, verify_function};

    const BARRIER_KERNEL: &str =
        "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c64 = const 64 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    %sm = alloc() : memref<64xf32, shared>
    parallel<thread> (%tx, %ty, %tz) to (%c64, %c1, %c1) {
      %w = mul %bx, %c64 : index
      %i = add %w, %tx : index
      %v = load %m[%i] : f32
      store %v, %sm[%tx]
      barrier<thread>
      %r = load %sm[%tx] : f32
      %d = add %r, %r : f32
      store %d, %m[%i]
      yield
    }
    yield
  }
  return
}";

    fn lower(src: &str, lanes: i64) -> (Function, CpuLowerSummary) {
        let mut func = parse_function(src).unwrap();
        let summary = lower_function_to_cpu(&mut func, &CpuLoweringParams { lanes });
        verify_function(&func).unwrap_or_else(|e| panic!("lowered IR fails verify: {e}\n{func}"));
        (func, summary)
    }

    #[test]
    fn fission_tiles_to_lane_width_and_demotes_shared() {
        let (func, summary) = lower(BARRIER_KERNEL, 8);
        assert_eq!(
            summary,
            CpuLowerSummary {
                fissioned: 1,
                fallback: 0,
                demoted_shared: 1,
                spills: 1
            },
            "%i crosses the barrier (used by the post-barrier store)"
        );
        let launch = launches_of(&func).unwrap().remove(0);
        assert_eq!(launch.block_dims, vec![8], "thread width is now W=8");
        assert!(
            launch.shared_allocs.is_empty(),
            "no shared memory survives CPU lowering"
        );
        let printed = func.to_string();
        assert!(printed.contains("local"), "demoted alloc is local");
        assert!(!printed.contains("shared"), "no shared space remains");
        assert_eq!(
            printed.matches("for ").count(),
            2,
            "one tile loop per barrier-delimited segment:\n{printed}"
        );
        assert!(
            printed.contains("barrier<thread>"),
            "barrier re-emitted between tile loops"
        );
    }

    #[test]
    fn cross_segment_scalars_are_spilled() {
        // %i is computed before the barrier and used after it.
        let src = "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c64 = const 64 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    %sm = alloc() : memref<64xf32, shared>
    parallel<thread> (%tx, %ty, %tz) to (%c64, %c1, %c1) {
      %w = mul %bx, %c64 : index
      %i = add %w, %tx : index
      %v = load %m[%i] : f32
      store %v, %sm[%tx]
      barrier<thread>
      %r = load %sm[%tx] : f32
      %d = add %r, %v : f32
      store %d, %m[%i]
      yield
    }
    yield
  }
  return
}";
        let (func, summary) = lower(src, 8);
        assert_eq!(summary.fissioned, 1);
        assert_eq!(
            summary.spills, 2,
            "%i (index) and %v (f32) cross the cut: {func}"
        );
        let printed = func.to_string();
        assert!(
            printed.contains("memref<64xf32, local>"),
            "f32 spill slot per thread:\n{printed}"
        );
        assert!(
            printed.contains("memref<64xindex, local>"),
            "index spill slot per thread:\n{printed}"
        );
    }

    #[test]
    fn constants_are_rematerialized_not_spilled() {
        let src = "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c4 = const 4 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c4, %c1, %c1) {
      %two = fconst 2.0 : f32
      %v = load %m[%tx] : f32
      %s = mul %v, %two : f32
      store %s, %m[%tx]
      barrier<thread>
      %r = load %m[%tx] : f32
      %d = mul %r, %two : f32
      store %d, %m[%tx]
      yield
    }
    yield
  }
  return
}";
        let (func, summary) = lower(src, 4);
        assert_eq!(summary.fissioned, 1);
        assert_eq!(summary.spills, 0, "constants rematerialize: {func}");
    }

    #[test]
    fn nested_barrier_takes_fallback_tier() {
        let src = "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c16 = const 16 : index
  %c1 = const 1 : index
  %c0 = const 0 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    %sm = alloc() : memref<16xf32, shared>
    parallel<thread> (%tx, %ty, %tz) to (%c16, %c1, %c1) {
      for %i = %c0 to %c16 step %c1 {
        %v = load %m[%tx] : f32
        store %v, %sm[%tx]
        barrier<thread>
        yield
      }
      yield
    }
    yield
  }
  return
}";
        let (func, summary) = lower(src, 8);
        assert_eq!(
            summary,
            CpuLowerSummary {
                fissioned: 0,
                fallback: 1,
                demoted_shared: 1,
                spills: 0
            }
        );
        let launch = launches_of(&func).unwrap().remove(0);
        assert_eq!(
            launch.block_dims,
            vec![16, 1, 1],
            "fallback keeps the full-width thread loop"
        );
        assert!(
            launch.shared_allocs.is_empty(),
            "demotion applies even on the fallback tier"
        );
    }

    #[test]
    fn multi_dim_thread_ids_are_delinearized() {
        let src = "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c8 = const 8 : index
  %c4 = const 4 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c8, %c4, %c1) {
      %r = mul %ty, %c8 : index
      %i = add %r, %tx : index
      %v = load %m[%i] : f32
      %d = add %v, %v : f32
      store %d, %m[%i]
      yield
    }
    yield
  }
  return
}";
        let (func, summary) = lower(src, 16);
        assert_eq!(summary.fissioned, 1);
        let launch = launches_of(&func).unwrap().remove(0);
        assert_eq!(launch.block_dims, vec![16], "W = min(16 lanes, 32 threads)");
        let printed = func.to_string();
        assert!(
            printed.contains("rem "),
            "tx = t %% 8 delinearization:\n{printed}"
        );
        assert!(printed.contains("div "), "ty = t / 8 delinearization");
    }

    #[test]
    fn lanes_clamp_to_thread_count() {
        let src = "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c4 = const 4 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c4, %c1, %c1) {
      %v = load %m[%tx] : f32
      store %v, %m[%tx]
      yield
    }
    yield
  }
  return
}";
        let (func, _) = lower(src, 64);
        let launch = launches_of(&func).unwrap().remove(0);
        assert_eq!(launch.block_dims, vec![4], "W never exceeds the block");
    }

    #[test]
    fn module_lowering_leaves_input_untouched() {
        let func = parse_function(BARRIER_KERNEL).unwrap();
        let mut module = Module::default();
        module.add_function(func);
        let before = format!("{module:?}");
        let lowered = lower_module_to_cpu(&module, &CpuLoweringParams { lanes: 8 });
        assert_eq!(format!("{module:?}"), before, "input module is untouched");
        let launch = launches_of(lowered.function("k").unwrap())
            .unwrap()
            .remove(0);
        assert_eq!(launch.block_dims, vec![8]);
    }
}
