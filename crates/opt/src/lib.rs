//! Optimization and transformation passes for the `respec` GPU retargeting
//! compiler — the paper's primary contribution.
//!
//! * [`interleave`] — nested parallel loop unroll-and-interleave (§IV),
//!   with jam/interleave of invariant control flow and barrier-merging
//!   legality (§IV-B).
//! * [`coarsen`] — thread and block coarsening as granularity variation
//!   (§V), including epilogue grids for non-divisor block factors.
//! * [`factors`] — balancing a total factor across multi-parallel
//!   dimensions (§IV-C).
//! * [`alternatives`] — compile-time multi-versioning (§VI).
//! * Classical cleanups the parallel representation enables: [`canonicalize`],
//!   [`cse`], [`licm`] (incl. shared-memory load hoisting), [`dce`].
//!
//! # Example: coarsen a kernel both ways
//!
//! ```
//! use respec_opt::{coarsen_function, optimize, CoarsenConfig};
//!
//! let mut func = respec_ir::parse_function(r#"
//! func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
//!   %c64 = const 64 : index
//!   %c1 = const 1 : index
//!   parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
//!     parallel<thread> (%tx, %ty, %tz) to (%c64, %c1, %c1) {
//!       %w = mul %bx, %c64 : index
//!       %i = add %w, %tx : index
//!       %v = load %m[%i] : f32
//!       store %v, %m[%i]
//!       yield
//!     }
//!     yield
//!   }
//!   return
//! }"#).expect("valid IR");
//! coarsen_function(&mut func, CoarsenConfig { block: [2, 1, 1], thread: [4, 1, 1] })?;
//! optimize(&mut func);
//! respec_ir::verify_function(&func).expect("still valid");
//! # Ok::<(), respec_opt::CoarsenError>(())
//! ```

pub mod alternatives;
mod barrier_elim;
mod canon;
pub mod coarsen;
pub mod cpu_lower;
mod cse;
mod dce;
pub mod factors;
pub mod interleave;
mod licm;
pub mod pass_manager;
mod shared_offload;

pub use alternatives::{
    alternative_region, extract_alternative, find_alternatives, generate_alternatives,
    materialize_selected, select_alternative, Alternative,
};
pub use barrier_elim::eliminate_barriers;
pub use canon::canonicalize;
pub use coarsen::{
    block_coarsen, coarsen_function, coarsen_function_region, coarsen_precheck, thread_coarsen,
    CoarsenConfig, CoarsenError,
};
pub use cpu_lower::{
    lower_function_to_cpu, lower_module_to_cpu, CpuLowerSummary, CpuLoweringParams,
};
pub use cse::cse;
pub use dce::dce;
pub use factors::{prime_factors, split_total};
pub use interleave::{
    parent_region, region_contains_barrier, unroll_interleave, IndexingStyle, InterleaveError,
};
pub use licm::licm;
pub use pass_manager::{
    op_census, optimize_traced, run_gated, run_pass, AnalysisGate, GateError, PIPELINE_VERSION,
};
pub use shared_offload::{offload_shared_to_global, OFFLOAD_BYTES_PER_THREAD, SMALL_L1_BYTES};

use respec_ir::Function;

/// Runs the standard cleanup pipeline (canonicalize → CSE → LICM → CSE →
/// DCE) for one round; returns the total number of rewrites.
///
/// This is the pass set Polygeist applies around coarsening: it folds the
/// interleaver's index arithmetic, deduplicates shared instance
/// computations, and hoists loop-invariant work (the `lavaMD` effect).
/// [`optimize_traced`] is the same pipeline with one recorded span per pass.
pub fn optimize(func: &mut Function) -> usize {
    optimize_traced(func, &respec_trace::Trace::disabled())
}

#[cfg(test)]
mod tests {
    use super::*;
    use respec_ir::{parse_function, verify_function};

    #[test]
    fn optimize_cleans_interleaved_kernel() {
        let mut func = parse_function(
            "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c64 = const 64 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c64, %c1, %c1) {
      %w = mul %bx, %c64 : index
      %i = add %w, %tx : index
      %v = load %m[%i] : f32
      store %v, %m[%i]
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        coarsen_function(
            &mut func,
            CoarsenConfig {
                block: [1, 1, 1],
                thread: [4, 1, 1],
            },
        )
        .unwrap();
        let before = func.to_string().lines().count();
        let n = optimize(&mut func);
        assert!(n > 0, "pipeline must find rewrites in interleaved code");
        verify_function(&func).unwrap();
        let after = func.to_string().lines().count();
        assert!(after <= before);
    }
}
