//! AMD shared-memory offloading (§VII-D2 of the paper).
//!
//! The paper observes that on AMD GPUs with very small L1 caches, the
//! backend *offloads* extreme static shared-memory allocations to global
//! memory rather than cratering occupancy — profiling `nw` on AMD showed
//! "no usage of shared memory", and disabling the offload made the kernel
//! 15× slower. This pass reproduces that backend policy at the IR level:
//! when a kernel's shared bytes per thread exceed a threshold on a
//! small-L1 target, its shared allocations are demoted to global-space
//! scratch.

use respec_ir::kernel::analyze_launch;
use respec_ir::{Function, MemRefType, MemSpace, OpKind, Type};

/// Shared bytes per thread above which a small-L1 backend offloads to
/// global memory. The paper's `nw` uses 136 B/thread — an order of
/// magnitude above the next heaviest kernel (`lud` at 12 B/thread).
pub const OFFLOAD_BYTES_PER_THREAD: u64 = 64;

/// L1 capacity below which the offloading policy activates (the AMD
/// targets in Table I have 16 KiB of L1 vs 128–192 KiB on NVIDIA).
pub const SMALL_L1_BYTES: u64 = 32 * 1024;

/// Applies the AMD backend's shared-memory offloading policy to a kernel.
/// Returns the number of allocations demoted.
///
/// Demotion rewrites `alloc : memref<..., shared>` to global space; the
/// type of the allocation's result (and thus all loads/stores through it)
/// changes space, so the simulator routes the traffic through the cache
/// hierarchy instead of the scratchpad — exactly what the paper measured.
pub fn offload_shared_to_global(func: &mut Function, l1_bytes: u64) -> usize {
    if l1_bytes >= SMALL_L1_BYTES {
        return 0;
    }
    let mut demoted = 0;
    for bp in respec_ir::kernel::block_parallels_in(func, func.body()) {
        let Ok(launch) = analyze_launch(func, bp) else {
            continue;
        };
        let threads = launch.threads_per_block().max(1) as u64;
        let per_thread = launch.shared_bytes(func) / threads;
        if per_thread <= OFFLOAD_BYTES_PER_THREAD {
            continue;
        }
        for alloc in launch.shared_allocs {
            let result = func.op(alloc).results[0];
            let old = func
                .value_type(result)
                .as_memref()
                .expect("shared allocs produce memrefs")
                .clone();
            let new_ty = MemRefType::new(old.elem, old.shape, MemSpace::Global);
            set_value_type(func, result, Type::MemRef(new_ty));
            func.op_mut(alloc).kind = OpKind::Alloc {
                space: MemSpace::Global,
            };
            demoted += 1;
        }
    }
    demoted
}

/// Rewrites the recorded type of a value (used only by space demotion,
/// which preserves shape and element type).
fn set_value_type(func: &mut Function, v: respec_ir::Value, ty: Type) {
    // The Function API keeps value types private; rebuild through the only
    // sanctioned mutation point.
    func.replace_value_type(v, ty);
}

#[cfg(test)]
mod tests {
    use super::*;
    use respec_ir::{parse_function, verify_function};

    const NW_LIKE: &str = "func @k(%g: index, %m: memref<?xf32, global>) {
  %c16 = const 16 : index
  parallel<block> (%b) to (%g) {
    %sm = alloc() : memref<17x17xf32, shared>
    parallel<thread> (%t) to (%c16) {
      %v = load %m[%t] : f32
      store %v, %sm[%t, %t]
      barrier<thread>
      %w = load %sm[%t, %t] : f32
      store %w, %m[%t]
      yield
    }
    yield
  }
  return
}";

    #[test]
    fn offloads_heavy_shared_on_small_l1() {
        // 17·17·4 = 1156 B over 16 threads = 72 B/thread > threshold.
        let mut func = parse_function(NW_LIKE).unwrap();
        let n = offload_shared_to_global(&mut func, 16 * 1024);
        assert_eq!(n, 1);
        verify_function(&func).unwrap();
        let launches = respec_ir::kernel::analyze_function(&func).unwrap();
        assert_eq!(
            launches[0].shared_allocs.len(),
            0,
            "no shared usage remains, as profiled on AMD"
        );
        assert!(func.to_string().contains("memref<17x17xf32, global>"));
    }

    #[test]
    fn keeps_shared_on_large_l1() {
        let mut func = parse_function(NW_LIKE).unwrap();
        assert_eq!(offload_shared_to_global(&mut func, 128 * 1024), 0);
        let launches = respec_ir::kernel::analyze_function(&func).unwrap();
        assert_eq!(launches[0].shared_allocs.len(), 1);
    }

    #[test]
    fn keeps_typical_shared_usage() {
        // lud-style 12 B/thread stays in the scratchpad even on small L1.
        let mut func = parse_function(
            "func @k(%g: index, %m: memref<?xf32, global>) {
  %c256 = const 256 : index
  parallel<block> (%b) to (%g) {
    %sm = alloc() : memref<16x16xf32, shared>
    parallel<thread> (%t) to (%c256) {
      %v = load %m[%t] : f32
      store %v, %m[%t]
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        assert_eq!(offload_shared_to_global(&mut func, 16 * 1024), 0);
    }
}
