//! Loop-invariant code motion, including the shared-memory load hoisting
//! that gives Polygeist its `lavaMD` advantage over clang (§VII-C).

use std::collections::HashSet;

use respec_ir::walk::walk_ops;
use respec_ir::{BinOp, Function, OpKind, RegionId, Value};

/// Hoists loop-invariant operations out of `for` and parallel loop bodies.
/// Returns the number of operations moved.
///
/// Pure arithmetic is hoisted whenever its operands are defined outside the
/// loop (integer division/remainder excluded — speculating them could
/// introduce faults). Loads are hoisted out of loops that contain no stores,
/// barriers or further side effects, mirroring Polygeist's shared-memory
/// load hoisting.
pub fn licm(func: &mut Function) -> usize {
    let mut moved = 0;
    let body = func.body();
    process_region(func, body, &mut moved);
    moved
}

fn process_region(func: &mut Function, region: RegionId, moved: &mut usize) {
    // Innermost-first: recurse before hoisting at this level.
    let ops = func.region(region).ops.clone();
    for op in &ops {
        for &r in &func.op(*op).regions.clone() {
            process_region(func, r, moved);
        }
    }
    // Hoist from each loop op's body into this region.
    let mut idx = 0;
    while idx < func.region(region).ops.len() {
        let op = func.region(region).ops[idx];
        let hoist_from = match &func.op(op).kind {
            OpKind::For => Some(func.op(op).regions[0]),
            OpKind::Parallel { .. } => Some(func.op(op).regions[0]),
            _ => None,
        };
        if let Some(body) = hoist_from {
            *moved += hoist_out_of(func, region, idx, body);
        }
        idx += 1;
    }
}

/// Values defined anywhere in the subtree rooted at `region` (arguments and
/// op results).
fn defined_in_subtree(func: &Function, region: RegionId) -> HashSet<Value> {
    let mut defined: HashSet<Value> = func.region(region).args.iter().copied().collect();
    walk_ops(func, region, &mut |op| {
        for &r in &func.op(op).results {
            defined.insert(r);
        }
        for &nested in &func.op(op).regions {
            for &a in &func.region(nested).args {
                defined.insert(a);
            }
        }
    });
    defined
}

fn subtree_has_side_effects(func: &Function, region: RegionId) -> bool {
    let mut found = false;
    walk_ops(func, region, &mut |op| {
        if matches!(
            func.op(op).kind,
            OpKind::Store | OpKind::Barrier { .. } | OpKind::Alloc { .. } | OpKind::Call { .. }
        ) {
            found = true;
        }
    });
    found
}

fn hoist_out_of(
    func: &mut Function,
    parent: RegionId,
    mut loop_pos: usize,
    body: RegionId,
) -> usize {
    let loads_ok = !subtree_has_side_effects(func, body);
    let mut moved = 0;
    loop {
        let mut defined = defined_in_subtree(func, body);
        let ops = func.region(body).ops.clone();
        let mut moved_this_round = 0;
        for op in ops {
            let operation = func.op(op);
            if operation.kind.is_terminator() {
                continue;
            }
            let hoistable_kind = match &operation.kind {
                OpKind::Binary(BinOp::Div) | OpKind::Binary(BinOp::Rem) => false,
                k if k.is_pure() => true,
                OpKind::ConstInt { .. } | OpKind::ConstFloat { .. } => true,
                OpKind::Load => loads_ok,
                _ => false,
            };
            if !hoistable_kind {
                continue;
            }
            if operation.operands.iter().any(|v| defined.contains(v)) {
                continue;
            }
            // Move: remove from the body list, insert before the loop.
            let body_ops = &mut func.region_mut(body).ops;
            let pos = body_ops
                .iter()
                .position(|&o| o == op)
                .expect("op is in body");
            body_ops.remove(pos);
            func.region_mut(parent).ops.insert(loop_pos, op);
            loop_pos += 1;
            for &r in &func.op(op).results.clone() {
                defined.remove(&r);
            }
            moved_this_round += 1;
        }
        moved += moved_this_round;
        if moved_this_round == 0 {
            return moved;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respec_ir::{parse_function, verify_function};

    #[test]
    fn hoists_invariant_arith_out_of_for() {
        let mut func = parse_function(
            "func @f(%n: index, %a: f32, %m: memref<?xf32, global>) {
  %c0 = const 0 : index
  %c1 = const 1 : index
  for %i = %c0 to %n step %c1 {
    %inv = mul %a, %a : f32
    store %inv, %m[%i]
    yield
  }
  return
}",
        )
        .unwrap();
        assert_eq!(licm(&mut func), 1);
        verify_function(&func).unwrap();
        // The mul must now precede the for.
        let body = func.region(func.body()).ops.clone();
        let mul_pos = body
            .iter()
            .position(|&o| matches!(func.op(o).kind, OpKind::Binary(BinOp::Mul)));
        let for_pos = body
            .iter()
            .position(|&o| matches!(func.op(o).kind, OpKind::For));
        assert!(mul_pos.unwrap() < for_pos.unwrap());
    }

    #[test]
    fn hoists_loads_from_store_free_loops() {
        // The lavaMD pattern: a shared-memory load invariant in the inner
        // compute loop.
        let mut func = parse_function(
            "func @f(%n: index, %m: memref<?xf32, global>, %j: index) {
  %c0 = const 0 : index
  %c1 = const 1 : index
  %z = fconst 0.0 : f32
  %r = for %i = %c0 to %n step %c1 iter (%acc = %z) {
    %v = load %m[%j] : f32
    %nx = add %acc, %v : f32
    yield %nx
  }
  store %r, %m[%j]
  return
}",
        )
        .unwrap();
        let moved = licm(&mut func);
        assert!(moved >= 1, "load must be hoisted, moved {moved}");
        verify_function(&func).unwrap();
        let body = func.region(func.body()).ops.clone();
        let load_pos = body
            .iter()
            .position(|&o| matches!(func.op(o).kind, OpKind::Load));
        assert!(load_pos.is_some(), "load must be at function level now");
    }

    #[test]
    fn does_not_hoist_loads_past_stores() {
        let mut func = parse_function(
            "func @f(%n: index, %m: memref<?xf32, global>, %j: index) {
  %c0 = const 0 : index
  %c1 = const 1 : index
  for %i = %c0 to %n step %c1 {
    %v = load %m[%j] : f32
    %d = add %v, %v : f32
    store %d, %m[%j]
    yield
  }
  return
}",
        )
        .unwrap();
        assert_eq!(licm(&mut func), 0);
    }

    #[test]
    fn does_not_hoist_variant_ops() {
        let mut func = parse_function(
            "func @f(%n: index, %m: memref<?xf32, global>) {
  %c0 = const 0 : index
  %c1 = const 1 : index
  for %i = %c0 to %n step %c1 {
    %v = add %i, %c1 : index
    store %c0, %m[%v]
    yield
  }
  return
}",
        )
        .unwrap();
        // %v depends on the induction variable; the store keeps loads out.
        assert_eq!(licm(&mut func), 0);
    }

    #[test]
    fn does_not_hoist_division() {
        let mut func = parse_function(
            "func @f(%n: index, %a: i32, %b: i32, %m: memref<?xi32, global>) {
  %c0 = const 0 : index
  %c1 = const 1 : index
  for %i = %c0 to %n step %c1 {
    %q = div %a, %b : i32
    store %q, %m[%i]
    yield
  }
  return
}",
        )
        .unwrap();
        // If %n == 0 the division never executes; speculating it could trap.
        assert_eq!(licm(&mut func), 0);
    }

    #[test]
    fn hoists_from_parallel_bodies() {
        let mut func = parse_function(
            "func @k(%gx: index, %gy: index, %gz: index, %a: f32, %m: memref<?xf32, global>) {
  %c32 = const 32 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c32, %c1, %c1) {
      %inv = mul %a, %a : f32
      store %inv, %m[%tx]
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        let moved = licm(&mut func);
        assert!(moved >= 1);
        verify_function(&func).unwrap();
    }
}
