//! Barrier elimination (one of the pre-existing parallel optimizations the
//! paper's representation enables, §III).
//!
//! A barrier orders accesses to block-shared state across threads. It is
//! removable when the code between it and the previous synchronization
//! point touches no shared memory at all — then no cross-thread ordering
//! can depend on it. Consecutive barriers likewise collapse to one (the
//! interleaver already merges the ones it creates; this pass cleans up the
//! rest, e.g. barriers made redundant after DCE removed shared accesses).

use respec_ir::walk::walk_ops;
use respec_ir::{Function, MemSpace, OpKind, RegionId};

/// Removes provably redundant thread barriers. Returns how many were
/// removed.
///
/// The analysis is intentionally conservative: only *straight-line*
/// barriers (directly in the thread-parallel body) whose preceding span
/// since the last synchronization point is free of shared/global memory
/// effects are removed; barriers nested in control flow are kept.
pub fn eliminate_barriers(func: &mut Function) -> usize {
    let mut removed = 0;
    let block_pars = respec_ir::kernel::block_parallels_in(func, func.body());
    for bp in block_pars {
        let mut thread_pars = Vec::new();
        walk_ops(func, func.op(bp).regions[0], &mut |op| {
            if matches!(
                func.op(op).kind,
                OpKind::Parallel {
                    level: respec_ir::ParLevel::Thread
                }
            ) {
                thread_pars.push(op);
            }
        });
        for tp in thread_pars {
            let region = func.op(tp).regions[0];
            removed += eliminate_in_region(func, region);
        }
    }
    removed
}

/// `true` if the op (or anything nested in it) may touch memory observable
/// by other threads (shared or global space).
fn has_observable_effects(func: &Function, op: respec_ir::OpId) -> bool {
    let check = |o: respec_ir::OpId| -> bool {
        let operation = func.op(o);
        match &operation.kind {
            OpKind::Load => mem_space(func, operation.operands[0]) != MemSpace::Local,
            OpKind::Store => mem_space(func, operation.operands[1]) != MemSpace::Local,
            OpKind::Alloc { space } => *space != MemSpace::Local,
            OpKind::Call { .. } => true,
            _ => false,
        }
    };
    if check(op) {
        return true;
    }
    let mut found = false;
    for &r in &func.op(op).regions {
        walk_ops(func, r, &mut |o| {
            if check(o) {
                found = true;
            }
        });
    }
    found
}

fn mem_space(func: &Function, v: respec_ir::Value) -> MemSpace {
    func.value_type(v)
        .as_memref()
        .map_or(MemSpace::Local, |m| m.space)
}

fn eliminate_in_region(func: &mut Function, region: RegionId) -> usize {
    let ops = func.region(region).ops.clone();
    let mut kept = Vec::with_capacity(ops.len());
    let mut removed = 0;
    // `clean` = no observable memory effects since the last kept barrier
    // (or since the start of the thread region, which is itself a
    // synchronization point: all threads start together).
    let mut clean = true;
    for op in ops {
        let is_barrier = matches!(func.op(op).kind, OpKind::Barrier { .. });
        if is_barrier {
            if clean {
                removed += 1;
                continue; // drop it
            }
            clean = true;
            kept.push(op);
            continue;
        }
        if has_observable_effects(func, op) {
            clean = false;
        }
        kept.push(op);
    }
    func.region_mut(region).ops = kept;
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use respec_ir::{parse_function, verify_function};

    fn barrier_count(func: &Function) -> usize {
        let mut n = 0;
        walk_ops(func, func.body(), &mut |op| {
            if matches!(func.op(op).kind, OpKind::Barrier { .. }) {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn removes_consecutive_barriers() {
        let mut func = parse_function(
            "func @k(%g: index, %m: memref<?xf32, global>) {
  %c32 = const 32 : index
  parallel<block> (%b) to (%g) {
    %sm = alloc() : memref<32xf32, shared>
    parallel<thread> (%t) to (%c32) {
      %v = load %m[%t] : f32
      store %v, %sm[%t]
      barrier<thread>
      barrier<thread>
      %w = load %sm[%t] : f32
      store %w, %m[%t]
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        assert_eq!(eliminate_barriers(&mut func), 1);
        verify_function(&func).unwrap();
        assert_eq!(barrier_count(&func), 1);
    }

    #[test]
    fn removes_leading_barrier() {
        let mut func = parse_function(
            "func @k(%g: index, %m: memref<?xf32, global>) {
  %c32 = const 32 : index
  parallel<block> (%b) to (%g) {
    parallel<thread> (%t) to (%c32) {
      barrier<thread>
      %v = load %m[%t] : f32
      store %v, %m[%t]
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        assert_eq!(eliminate_barriers(&mut func), 1);
        assert_eq!(barrier_count(&func), 0);
    }

    #[test]
    fn keeps_barriers_ordering_shared_accesses() {
        let mut func = parse_function(
            "func @k(%g: index, %m: memref<?xf32, global>) {
  %c32 = const 32 : index
  parallel<block> (%b) to (%g) {
    %sm = alloc() : memref<32xf32, shared>
    parallel<thread> (%t) to (%c32) {
      %v = load %m[%t] : f32
      store %v, %sm[%t]
      barrier<thread>
      %w = load %sm[%t] : f32
      store %w, %m[%t]
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        assert_eq!(eliminate_barriers(&mut func), 0);
        assert_eq!(barrier_count(&func), 1);
    }

    #[test]
    fn local_array_traffic_does_not_pin_barriers() {
        let mut func = parse_function(
            "func @k(%g: index, %m: memref<?xf32, global>) {
  %c32 = const 32 : index
  %c0 = const 0 : index
  parallel<block> (%b) to (%g) {
    parallel<thread> (%t) to (%c32) {
      %tmp = alloc() : memref<4xf32, local>
      %z = fconst 0.0 : f32
      store %z, %tmp[%c0]
      barrier<thread>
      %v = load %tmp[%c0] : f32
      store %v, %m[%t]
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        // Only thread-private memory before the barrier: removable.
        assert_eq!(eliminate_barriers(&mut func), 1);
        verify_function(&func).unwrap();
    }

    #[test]
    fn barriers_in_nested_control_flow_are_kept() {
        let mut func = parse_function(
            "func @k(%g: index, %m: memref<?xf32, global>, %n: index) {
  %c32 = const 32 : index
  %c0 = const 0 : index
  %c1 = const 1 : index
  parallel<block> (%b) to (%g) {
    %sm = alloc() : memref<32xf32, shared>
    parallel<thread> (%t) to (%c32) {
      for %i = %c0 to %n step %c1 {
        %v = load %sm[%t] : f32
        store %v, %sm[%t]
        barrier<thread>
        yield
      }
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        assert_eq!(eliminate_barriers(&mut func), 0);
        assert_eq!(barrier_count(&func), 1);
    }
}
