//! Coarsening factor selection across multi-parallel dimensions (§IV-C).
//!
//! A *total* factor is balanced across the dimensions that are not of
//! constant size 1, exactly as the paper's footnote describes: a total of 16
//! over three dimensions becomes (4, 2, 2); a total of 6 becomes (3, 2, 1).

/// Splits `total` into prime factors, largest first.
pub fn prime_factors(total: i64) -> Vec<i64> {
    assert!(total >= 1, "factors must be positive");
    let mut n = total;
    let mut out = Vec::new();
    let mut p = 2;
    while p * p <= n {
        while n % p == 0 {
            out.push(p);
            n /= p;
        }
        p += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out.sort_unstable_by(|a, b| b.cmp(a));
    out
}

/// Balances a total coarsening factor across up to three dimensions.
///
/// `dim_sizes` are the extents of the parallel dimensions (`None` for
/// dynamic extents, which are always eligible). Dimensions of constant size
/// 1 are skipped. When `divisor_only` is set (thread coarsening, §V-C), the
/// per-dimension factor must divide the dimension size; the function returns
/// `None` if the total cannot be placed.
///
/// Primes are assigned greedily, each to the currently least-loaded eligible
/// dimension (ties broken toward x).
pub fn split_total(
    total: i64,
    dim_sizes: &[Option<i64>; 3],
    divisor_only: bool,
) -> Option<[i64; 3]> {
    let mut factors = [1i64; 3];
    if total == 1 {
        return Some(factors);
    }
    let eligible: Vec<usize> = (0..3).filter(|&d| dim_sizes[d] != Some(1)).collect();
    if eligible.is_empty() {
        return None;
    }
    for p in prime_factors(total) {
        // Pick the eligible dimension with the smallest current factor where
        // the prime still fits.
        let mut best: Option<usize> = None;
        for &d in &eligible {
            let candidate = factors[d] * p;
            if divisor_only {
                match dim_sizes[d] {
                    Some(size) if size % candidate != 0 => continue,
                    None => {}
                    Some(_) => {}
                }
            } else if let Some(size) = dim_sizes[d] {
                // Even without the divisor restriction, never coarsen a
                // dimension beyond its extent.
                if candidate > size {
                    continue;
                }
            }
            match best {
                None => best = Some(d),
                Some(b) if factors[d] < factors[b] => best = Some(d),
                _ => {}
            }
        }
        factors[best?] *= p;
    }
    Some(factors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes_of_sixteen() {
        assert_eq!(prime_factors(16), vec![2, 2, 2, 2]);
        assert_eq!(prime_factors(6), vec![3, 2]);
        assert_eq!(prime_factors(7), vec![7]);
        assert_eq!(prime_factors(1), Vec::<i64>::new());
    }

    #[test]
    fn paper_examples() {
        // "for a total factor of 16, we will coarsen the 3 dimensions with
        //  4, 2, and 2 respectively, whereas for 6 we will coarsen with
        //  3, 2, and 1."
        let dims = [Some(256), Some(256), Some(256)];
        assert_eq!(split_total(16, &dims, false), Some([4, 2, 2]));
        assert_eq!(split_total(6, &dims, false), Some([3, 2, 1]));
    }

    #[test]
    fn size_one_dimensions_are_skipped() {
        let dims = [Some(256), Some(1), Some(1)];
        assert_eq!(split_total(8, &dims, false), Some([8, 1, 1]));
        let dims2 = [Some(16), Some(16), Some(1)];
        assert_eq!(split_total(16, &dims2, false), Some([4, 4, 1]));
    }

    #[test]
    fn divisor_only_respects_block_dims() {
        // 16×16 block: a total of 32 can only be placed as products dividing
        // each dimension.
        let dims = [Some(16), Some(16), Some(1)];
        let f = split_total(32, &dims, true).unwrap();
        assert_eq!(f[0] * f[1] * f[2], 32);
        assert_eq!(16 % f[0], 0);
        assert_eq!(16 % f[1], 0);
    }

    #[test]
    fn divisor_only_fails_when_impossible() {
        // A block of 6×1×1 threads cannot take a factor of 4 divisor-wise.
        let dims = [Some(6), Some(1), Some(1)];
        assert_eq!(split_total(4, &dims, true), None);
        // But 3 fits.
        assert_eq!(split_total(3, &dims, true), Some([3, 1, 1]));
    }

    #[test]
    fn dynamic_dims_accept_anything() {
        let dims = [None, None, Some(1)];
        let f = split_total(12, &dims, false).unwrap();
        assert_eq!(f[0] * f[1], 12);
    }

    #[test]
    fn all_unit_dims_cannot_be_coarsened() {
        let dims = [Some(1), Some(1), Some(1)];
        assert_eq!(split_total(2, &dims, false), None);
    }
}
