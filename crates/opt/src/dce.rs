//! Dead code elimination for pure operations with unused results.

use std::collections::HashSet;

use respec_ir::{Function, OpKind, RegionId, Value};

/// Removes pure operations whose results are never used, to a fixpoint.
/// Returns the number of operations removed.
pub fn dce(func: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let removed = run_once(func);
        total += removed;
        if removed == 0 {
            return total;
        }
    }
}

fn run_once(func: &mut Function) -> usize {
    let mut used: HashSet<Value> = HashSet::new();
    collect_uses(func, func.body(), &mut used);
    let mut removed = 0;
    prune_region(func, func.body(), &used, &mut removed);
    removed
}

fn collect_uses(func: &Function, region: RegionId, used: &mut HashSet<Value>) {
    respec_ir::walk::walk_ops(func, region, &mut |op| {
        for &v in &func.op(op).operands {
            used.insert(v);
        }
    });
}

fn removable(func: &Function, op: respec_ir::OpId, used: &HashSet<Value>) -> bool {
    let operation = func.op(op);
    let pure_like = operation.kind.is_pure()
        || matches!(
            operation.kind,
            OpKind::ConstInt { .. } | OpKind::ConstFloat { .. }
        );
    pure_like && operation.results.iter().all(|r| !used.contains(r))
}

fn prune_region(func: &mut Function, region: RegionId, used: &HashSet<Value>, removed: &mut usize) {
    let ops = func.region(region).ops.clone();
    let mut kept = Vec::with_capacity(ops.len());
    for op in ops {
        if removable(func, op, used) {
            *removed += 1;
            continue;
        }
        for &r in &func.op(op).regions.clone() {
            prune_region(func, r, used, removed);
        }
        kept.push(op);
    }
    func.region_mut(region).ops = kept;
}

#[cfg(test)]
mod tests {
    use super::*;
    use respec_ir::{parse_function, verify_function};

    #[test]
    fn removes_dead_arith_chains() {
        let mut func = parse_function(
            "func @f(%a: f32) {
  %x = add %a, %a : f32
  %y = mul %x, %x : f32
  %z = add %a, %a : f32
  return %z
}",
        )
        .unwrap();
        // %y is dead, then %x becomes dead: fixpoint removes both.
        assert_eq!(dce(&mut func), 2);
        verify_function(&func).unwrap();
    }

    #[test]
    fn keeps_side_effecting_ops() {
        let mut func = parse_function(
            "func @f(%m: memref<?xf32, global>, %i: index) {
  %x = load %m[%i] : f32
  store %x, %m[%i]
  return
}",
        )
        .unwrap();
        assert_eq!(dce(&mut func), 0);
    }

    #[test]
    fn prunes_inside_nested_regions() {
        let mut func = parse_function(
            "func @f(%a: f32, %c: i1) {
  %r = if %c {
    %dead = mul %a, %a : f32
    yield %a
  } else {
    yield %a
  }
  return %r
}",
        )
        .unwrap();
        assert_eq!(dce(&mut func), 1);
        verify_function(&func).unwrap();
    }

    #[test]
    fn keeps_values_used_only_in_nested_regions() {
        let mut func = parse_function(
            "func @f(%a: f32, %c: i1) {
  %x = mul %a, %a : f32
  %r = if %c {
    yield %x
  } else {
    yield %a
  }
  return %r
}",
        )
        .unwrap();
        assert_eq!(dce(&mut func), 0);
    }
}
