//! Traced pass pipeline: runs the cleanup passes while recording one span
//! per pass with rewrite counts and IR op-census deltas (ops before/after
//! and the per-`OpKind` histogram change), so `chrome://tracing` shows
//! where compile time and IR churn go.

use std::collections::BTreeMap;

use respec_ir::walk::walk_ops;
use respec_ir::{Function, OpKind};
use respec_trace::Trace;

/// Number of ops reachable from the function body, per op-kind label.
pub fn op_census(func: &Function) -> BTreeMap<&'static str, u64> {
    let mut census = BTreeMap::new();
    walk_ops(func, func.body(), &mut |op| {
        *census.entry(kind_label(&func.op(op).kind)).or_insert(0) += 1;
    });
    census
}

/// Stable, lowercase label of an op kind (histogram/metric key).
pub fn kind_label(kind: &OpKind) -> &'static str {
    match kind {
        OpKind::ConstInt { .. } => "const_int",
        OpKind::ConstFloat { .. } => "const_float",
        OpKind::Binary(_) => "binary",
        OpKind::Unary(_) => "unary",
        OpKind::Cmp(_) => "cmp",
        OpKind::Select => "select",
        OpKind::Cast { .. } => "cast",
        OpKind::Alloc { .. } => "alloc",
        OpKind::Load => "load",
        OpKind::Store => "store",
        OpKind::Dim { .. } => "dim",
        OpKind::For => "for",
        OpKind::While => "while",
        OpKind::If => "if",
        OpKind::Parallel { .. } => "parallel",
        OpKind::Barrier { .. } => "barrier",
        OpKind::Yield => "yield",
        OpKind::Condition => "condition",
        OpKind::Alternatives { .. } => "alternatives",
        OpKind::Call { .. } => "call",
        OpKind::Return => "return",
    }
}

/// Runs one pass under a span named `pass:<name>`, recording the rewrite
/// count, total op counts before/after, and per-kind op deltas. On a
/// disabled trace this is exactly `pass(func)` — no census is taken.
pub fn run_pass(
    trace: &Trace,
    func: &mut Function,
    name: &str,
    pass: impl FnOnce(&mut Function) -> usize,
) -> usize {
    if !trace.is_enabled() {
        return pass(func);
    }
    let before = op_census(func);
    let mut span = trace.span("pass", format!("pass:{name}"));
    span.record("function", func.name());
    let rewrites = pass(func);
    let after = op_census(func);
    span.record("rewrites", rewrites);
    span.record("ops_before", before.values().sum::<u64>());
    span.record("ops_after", after.values().sum::<u64>());
    // Per-kind histogram: absolute after-counts, plus deltas for kinds the
    // pass changed (keeps the span small on no-op passes).
    for (kind, count) in &after {
        span.record(format!("ops:{kind}"), *count);
    }
    for kind in before.keys().chain(after.keys()) {
        let b = before.get(kind).copied().unwrap_or(0) as i64;
        let a = after.get(kind).copied().unwrap_or(0) as i64;
        if a != b {
            span.record(format!("delta:{kind}"), a - b);
        }
    }
    rewrites
}

/// The standard cleanup pipeline (canonicalize → CSE → LICM → CSE → DCE →
/// barrier elimination) with one span per pass; returns the total number of
/// rewrites. [`crate::optimize`] is this with a disabled trace.
pub fn optimize_traced(func: &mut Function, trace: &Trace) -> usize {
    let mut n = 0;
    n += run_pass(trace, func, "canonicalize", crate::canonicalize);
    n += run_pass(trace, func, "cse", crate::cse);
    n += run_pass(trace, func, "licm", crate::licm);
    n += run_pass(trace, func, "cse", crate::cse);
    n += run_pass(trace, func, "dce", crate::dce);
    n += run_pass(trace, func, "barrier-elim", crate::eliminate_barriers);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use respec_ir::parse_function;
    use respec_trace::MetricValue;

    const KERNEL: &str = "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c64 = const 64 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c64, %c1, %c1) {
      %w = mul %bx, %c64 : index
      %w2 = mul %bx, %c64 : index
      %i = add %w, %tx : index
      %i2 = add %w2, %tx : index
      %v = load %m[%i] : f32
      store %v, %m[%i2]
      yield
    }
    yield
  }
  return
}";

    #[test]
    fn census_counts_by_kind() {
        let func = parse_function(KERNEL).unwrap();
        let census = op_census(&func);
        assert_eq!(census["load"], 1);
        assert_eq!(census["store"], 1);
        assert_eq!(census["parallel"], 2);
        assert_eq!(census["binary"], 4);
    }

    #[test]
    fn traced_pipeline_records_one_span_per_pass() {
        let mut func = parse_function(KERNEL).unwrap();
        let trace = respec_trace::Trace::new();
        let rewrites = optimize_traced(&mut func, &trace);
        assert!(rewrites > 0, "duplicate index math must be cleaned up");
        let events = trace.events();
        assert_eq!(events.len(), 6, "one span per pass");
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "pass:canonicalize",
                "pass:cse",
                "pass:licm",
                "pass:cse",
                "pass:dce",
                "pass:barrier-elim"
            ]
        );
        // The duplicated index math (%w2/%i2) must disappear somewhere in
        // the pipeline, and the span metrics must show exactly where.
        let first_before = events[0]
            .metric("ops_before")
            .and_then(|m| m.as_f64())
            .unwrap();
        let last_after = events[5]
            .metric("ops_after")
            .and_then(|m| m.as_f64())
            .unwrap();
        assert!(
            last_after < first_before,
            "pipeline must shrink the op count"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e.metric("rewrites"), Some(MetricValue::UInt(n)) if *n > 0)));
        assert!(
            events
                .iter()
                .any(|e| matches!(e.metric("delta:binary"), Some(MetricValue::Int(d)) if *d < 0)),
            "some pass must record the removal of the duplicate binary ops"
        );
    }

    #[test]
    fn traced_and_untraced_produce_identical_ir() {
        let mut traced = parse_function(KERNEL).unwrap();
        let mut untraced = parse_function(KERNEL).unwrap();
        let trace = respec_trace::Trace::new();
        let a = optimize_traced(&mut traced, &trace);
        let b = crate::optimize(&mut untraced);
        assert_eq!(a, b);
        assert_eq!(traced.to_string(), untraced.to_string());
    }
}
