//! Traced pass pipeline: runs the cleanup passes while recording one span
//! per pass with rewrite counts and IR op-census deltas (ops before/after
//! and the per-`OpKind` histogram change), so `chrome://tracing` shows
//! where compile time and IR churn go.

use std::collections::BTreeMap;
use std::fmt;

use respec_analyze::{analyze_function, introduced_errors, Baseline};
use respec_ir::walk::walk_ops;
use respec_ir::{Diagnostic, Function, OpKind};
use respec_trace::Trace;

/// Version of the canonical cleanup pipeline (pass set, pass order, and
/// the rewrites each pass may perform). Persisted artifacts derived from
/// pipeline output — golden IR snapshots, the on-disk tuning cache — embed
/// this number; bump it whenever a pass change can alter the produced IR
/// so stale entries invalidate instead of silently matching.
pub const PIPELINE_VERSION: u32 = 1;

/// Number of ops reachable from the function body, per op-kind label.
pub fn op_census(func: &Function) -> BTreeMap<&'static str, u64> {
    let mut census = BTreeMap::new();
    walk_ops(func, func.body(), &mut |op| {
        *census.entry(kind_label(&func.op(op).kind)).or_insert(0) += 1;
    });
    census
}

/// Stable, lowercase label of an op kind (histogram/metric key).
pub fn kind_label(kind: &OpKind) -> &'static str {
    match kind {
        OpKind::ConstInt { .. } => "const_int",
        OpKind::ConstFloat { .. } => "const_float",
        OpKind::Binary(_) => "binary",
        OpKind::Unary(_) => "unary",
        OpKind::Cmp(_) => "cmp",
        OpKind::Select => "select",
        OpKind::Cast { .. } => "cast",
        OpKind::Alloc { .. } => "alloc",
        OpKind::Load => "load",
        OpKind::Store => "store",
        OpKind::Dim { .. } => "dim",
        OpKind::For => "for",
        OpKind::While => "while",
        OpKind::If => "if",
        OpKind::Parallel { .. } => "parallel",
        OpKind::Barrier { .. } => "barrier",
        OpKind::Yield => "yield",
        OpKind::Condition => "condition",
        OpKind::Alternatives { .. } => "alternatives",
        OpKind::Call { .. } => "call",
        OpKind::Return => "return",
    }
}

/// Runs one pass under a span named `pass:<name>`, recording the rewrite
/// count, total op counts before/after, and per-kind op deltas. On a
/// disabled trace this is exactly `pass(func)` — no census is taken.
pub fn run_pass(
    trace: &Trace,
    func: &mut Function,
    name: &str,
    pass: impl FnOnce(&mut Function) -> usize,
) -> usize {
    if !trace.is_enabled() {
        return pass(func);
    }
    let before = op_census(func);
    let mut span = trace.span("pass", format!("pass:{name}"));
    span.record("function", func.name());
    let rewrites = pass(func);
    let after = op_census(func);
    span.record("rewrites", rewrites);
    span.record("ops_before", before.values().sum::<u64>());
    span.record("ops_after", after.values().sum::<u64>());
    // Per-kind histogram: absolute after-counts, plus deltas for kinds the
    // pass changed (keeps the span small on no-op passes).
    for (kind, count) in &after {
        span.record(format!("ops:{kind}"), *count);
    }
    for kind in before.keys().chain(after.keys()) {
        let b = before.get(kind).copied().unwrap_or(0) as i64;
        let a = after.get(kind).copied().unwrap_or(0) as i64;
        if a != b {
            span.record(format!("delta:{kind}"), a - b);
        }
    }
    rewrites
}

/// A transformation introduced an error-grade legality finding (a shared-
/// memory race or divergent barrier the input did not have). Produced by
/// [`AnalysisGate::check`] and [`run_gated`].
#[derive(Clone, Debug)]
pub struct GateError {
    /// Name of the stage that tripped the gate.
    pub stage: String,
    /// The findings that exceed the pre-transformation baseline.
    pub introduced: Vec<Diagnostic>,
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage `{}` introduced {} legality error(s); first: {}",
            self.stage,
            self.introduced.len(),
            self.introduced
                .first()
                .map(|d| d.message.as_str())
                .unwrap_or("<none>"),
        )
    }
}

impl std::error::Error for GateError {}

impl From<GateError> for Diagnostic {
    fn from(e: GateError) -> Diagnostic {
        match e.introduced.into_iter().next() {
            Some(mut d) => {
                d.message = format!("introduced by stage `{}`: {}", e.stage, d.message);
                d
            }
            None => Diagnostic::error(
                "gate-error",
                format!("stage `{}` tripped the gate", e.stage),
            ),
        }
    }
}

/// Legality gate around transformation stages: snapshot the error-grade
/// findings of the input, transform, and fail hard if new errors appeared.
///
/// Budgets are compared *per diagnostic code, by count* — transformations
/// legitimately move, duplicate and renumber operations, so locations are
/// not stable across a stage, but a stage that turns a race-free kernel
/// into a racy one always raises some error count.
pub struct AnalysisGate {
    baseline: Baseline,
}

impl AnalysisGate {
    /// Snapshots `func`'s current error-grade findings as the budget.
    pub fn before(func: &Function) -> AnalysisGate {
        AnalysisGate {
            baseline: Baseline::of(func),
        }
    }

    /// The snapshotted baseline.
    pub fn baseline(&self) -> &Baseline {
        &self.baseline
    }

    /// Re-analyzes `func` after a transformation; any error exceeding the
    /// baseline budget fails the stage.
    ///
    /// # Errors
    ///
    /// Returns a [`GateError`] carrying the introduced diagnostics.
    pub fn check(&self, func: &Function, stage: &str) -> Result<(), GateError> {
        let report = analyze_function(func);
        let introduced = introduced_errors(&self.baseline, &report);
        if introduced.is_empty() {
            Ok(())
        } else {
            Err(GateError {
                stage: stage.to_string(),
                introduced,
            })
        }
    }
}

/// Runs `transform` under the legality gate and a `gate:<name>` span: the
/// error baseline is snapshotted before, and the stage fails if the
/// transformed function has error-grade findings the input did not.
///
/// # Errors
///
/// Returns a [`GateError`] when the transformation introduced a race or a
/// divergent barrier; the function is left in its transformed state so the
/// caller can inspect (or discard) it.
pub fn run_gated<T>(
    trace: &Trace,
    func: &mut Function,
    name: &str,
    transform: impl FnOnce(&mut Function) -> T,
) -> Result<T, GateError> {
    let gate = AnalysisGate::before(func);
    let out = transform(func);
    let result = gate.check(func, name);
    if trace.is_enabled() {
        let mut span = trace.span("gate", format!("gate:{name}"));
        span.record("function", func.name());
        span.record(
            "introduced_errors",
            result.as_ref().err().map_or(0, |e| e.introduced.len()) as u64,
        );
    }
    result.map(|()| out)
}

/// The standard cleanup pipeline (canonicalize → CSE → LICM → CSE → DCE →
/// barrier elimination) with one span per pass; returns the total number of
/// rewrites. [`crate::optimize`] is this with a disabled trace.
pub fn optimize_traced(func: &mut Function, trace: &Trace) -> usize {
    let mut n = 0;
    n += run_pass(trace, func, "canonicalize", crate::canonicalize);
    n += run_pass(trace, func, "cse", crate::cse);
    n += run_pass(trace, func, "licm", crate::licm);
    n += run_pass(trace, func, "cse", crate::cse);
    n += run_pass(trace, func, "dce", crate::dce);
    n += run_pass(trace, func, "barrier-elim", crate::eliminate_barriers);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use respec_ir::parse_function;
    use respec_trace::MetricValue;

    const KERNEL: &str = "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c64 = const 64 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c64, %c1, %c1) {
      %w = mul %bx, %c64 : index
      %w2 = mul %bx, %c64 : index
      %i = add %w, %tx : index
      %i2 = add %w2, %tx : index
      %v = load %m[%i] : f32
      store %v, %m[%i2]
      yield
    }
    yield
  }
  return
}";

    #[test]
    fn census_counts_by_kind() {
        let func = parse_function(KERNEL).unwrap();
        let census = op_census(&func);
        assert_eq!(census["load"], 1);
        assert_eq!(census["store"], 1);
        assert_eq!(census["parallel"], 2);
        assert_eq!(census["binary"], 4);
    }

    #[test]
    fn traced_pipeline_records_one_span_per_pass() {
        let mut func = parse_function(KERNEL).unwrap();
        let trace = respec_trace::Trace::new();
        let rewrites = optimize_traced(&mut func, &trace);
        assert!(rewrites > 0, "duplicate index math must be cleaned up");
        let events = trace.events();
        assert_eq!(events.len(), 6, "one span per pass");
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "pass:canonicalize",
                "pass:cse",
                "pass:licm",
                "pass:cse",
                "pass:dce",
                "pass:barrier-elim"
            ]
        );
        // The duplicated index math (%w2/%i2) must disappear somewhere in
        // the pipeline, and the span metrics must show exactly where.
        let first_before = events[0]
            .metric("ops_before")
            .and_then(|m| m.as_f64())
            .unwrap();
        let last_after = events[5]
            .metric("ops_after")
            .and_then(|m| m.as_f64())
            .unwrap();
        assert!(
            last_after < first_before,
            "pipeline must shrink the op count"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e.metric("rewrites"), Some(MetricValue::UInt(n)) if *n > 0)));
        assert!(
            events
                .iter()
                .any(|e| matches!(e.metric("delta:binary"), Some(MetricValue::Int(d)) if *d < 0)),
            "some pass must record the removal of the duplicate binary ops"
        );
    }

    const STAGED: &str = "func @s(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c8 = const 8 : index
  %c1 = const 1 : index
  %c7 = const 7 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    %sm = alloc() : memref<8xf32, shared>
    parallel<thread> (%tx, %ty, %tz) to (%c8, %c1, %c1) {
      %f = cast %tx : f32
      store %f, %sm[%tx]
      barrier<thread>
      %n = sub %c7, %tx : index
      %v = load %sm[%n] : f32
      store %v, %m[%tx]
      yield
    }
    yield
  }
  return
}";

    /// A deliberately illegal "pass": deletes every thread barrier without
    /// checking who depends on it.
    fn drop_barriers(func: &mut Function) -> usize {
        let mut dropped = 0;
        let regions: Vec<_> = (0..func.num_regions())
            .map(respec_ir::RegionId::from_index)
            .collect();
        for r in regions {
            let before = func.region(r).ops.len();
            let kept: Vec<_> = func
                .region(r)
                .ops
                .iter()
                .copied()
                .filter(|&o| !matches!(func.op(o).kind, OpKind::Barrier { .. }))
                .collect();
            dropped += before - kept.len();
            func.region_mut(r).ops = kept;
        }
        dropped
    }

    #[test]
    fn gate_trips_on_a_pass_that_introduces_a_race() {
        let mut func = parse_function(STAGED).unwrap();
        let err = run_gated(
            &respec_trace::Trace::disabled(),
            &mut func,
            "drop-barriers",
            drop_barriers,
        )
        .unwrap_err();
        assert!(
            err.introduced.iter().any(|d| d.code.starts_with("race-")),
            "{err}"
        );
        // The error converts into the diagnostics currency with the stage
        // recorded in the message.
        let d: respec_ir::Diagnostic = err.into();
        assert!(d.is_error());
        assert!(d.message.contains("drop-barriers"));
    }

    #[test]
    fn gate_passes_legal_stages_and_records_a_span() {
        let mut func = parse_function(STAGED).unwrap();
        let trace = respec_trace::Trace::new();
        let rewrites = run_gated(&trace, &mut func, "optimize", crate::optimize).unwrap();
        let _ = rewrites;
        let events = trace.events();
        let gate = events.iter().find(|e| e.name == "gate:optimize").unwrap();
        assert_eq!(
            gate.metric("introduced_errors").and_then(|m| m.as_f64()),
            Some(0.0)
        );
    }

    #[test]
    fn gate_keeps_preexisting_errors_within_budget() {
        // A kernel that is *already* racy: the gate must not blame a
        // harmless cleanup stage for errors the input carried in.
        let mut func = parse_function(STAGED).unwrap();
        drop_barriers(&mut func);
        run_gated(
            &respec_trace::Trace::disabled(),
            &mut func,
            "optimize",
            crate::optimize,
        )
        .expect("the race predates the stage");
    }

    #[test]
    fn traced_and_untraced_produce_identical_ir() {
        let mut traced = parse_function(KERNEL).unwrap();
        let mut untraced = parse_function(KERNEL).unwrap();
        let trace = respec_trace::Trace::new();
        let a = optimize_traced(&mut traced, &trace);
        let b = crate::optimize(&mut untraced);
        assert_eq!(a, b);
        assert_eq!(traced.to_string(), untraced.to_string());
    }
}
