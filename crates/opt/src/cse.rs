//! Common subexpression elimination for pure operations.
//!
//! In the structured IR, lexical scope *is* dominance: an op dominates every
//! later op of its region and everything nested under them. CSE therefore
//! keeps a scoped table keyed by `(kind, operands)`.

use std::collections::HashMap;

use respec_ir::{Function, OpKind, RegionId, Value};

#[derive(Clone, PartialEq, Eq, Hash)]
struct Key {
    kind_fingerprint: String,
    operands: Vec<Value>,
}

fn key_of(kind: &OpKind, operands: &[Value]) -> Key {
    Key {
        // OpKind is not Hash (it carries f64); the Debug form is a stable
        // fingerprint of kind + attributes.
        kind_fingerprint: format!("{kind:?}"),
        operands: operands.to_vec(),
    }
}

/// Runs CSE; returns the number of operations deduplicated.
pub fn cse(func: &mut Function) -> usize {
    let mut scopes: Vec<HashMap<Key, Vec<Value>>> = vec![HashMap::new()];
    let body = func.body();
    let mut removed = 0;
    cse_region(func, body, &mut scopes, &mut removed);
    removed
}

fn cse_region(
    func: &mut Function,
    region: RegionId,
    scopes: &mut Vec<HashMap<Key, Vec<Value>>>,
    removed: &mut usize,
) {
    scopes.push(HashMap::new());
    let ops = func.region(region).ops.clone();
    let mut replacements: HashMap<Value, Value> = HashMap::new();
    let mut kept = Vec::with_capacity(ops.len());
    for op_id in ops {
        // Rewrite operands through pending replacements.
        if !replacements.is_empty() {
            for operand in &mut func.op_mut(op_id).operands {
                if let Some(&n) = replacements.get(operand) {
                    *operand = n;
                }
            }
        }
        let op = func.op(op_id).clone();
        if op.kind.is_pure()
            || matches!(op.kind, OpKind::ConstInt { .. } | OpKind::ConstFloat { .. })
        {
            let key = key_of(&op.kind, &op.operands);
            if let Some(prev) = scopes.iter().rev().find_map(|s| s.get(&key)) {
                for (old, new) in op.results.iter().zip(prev.clone()) {
                    replacements.insert(*old, new);
                }
                *removed += 1;
                continue; // drop the duplicate op
            }
            scopes
                .last_mut()
                .expect("scope stack is never empty")
                .insert(key, op.results.clone());
        }
        for &r in &op.regions {
            cse_region(func, r, scopes, removed);
        }
        kept.push(op_id);
    }
    func.region_mut(region).ops = kept;
    if !replacements.is_empty() {
        respec_ir::walk::replace_uses_in_region(func, region, &replacements);
    }
    scopes.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use respec_ir::{parse_function, verify_function};

    #[test]
    fn deduplicates_identical_arith() {
        let mut func = parse_function(
            "func @f(%a: f32, %b: f32) {
  %x = add %a, %b : f32
  %y = add %a, %b : f32
  %z = mul %x, %y : f32
  return %z
}",
        )
        .unwrap();
        assert_eq!(cse(&mut func), 1);
        verify_function(&func).unwrap();
        let text = func.to_string();
        assert_eq!(text.matches(" add ").count(), 1, "{text}");
    }

    #[test]
    fn deduplicates_constants() {
        let mut func = parse_function(
            "func @f() {\n  %a = const 5 : i32\n  %b = const 5 : i32\n  %c = add %a, %b : i32\n  return %c\n}",
        )
        .unwrap();
        assert_eq!(cse(&mut func), 1);
        verify_function(&func).unwrap();
    }

    #[test]
    fn outer_values_are_visible_in_nested_regions() {
        let mut func = parse_function(
            "func @f(%a: f32, %c: i1) {
  %x = add %a, %a : f32
  %r = if %c {
    %y = add %a, %a : f32
    yield %y
  } else {
    yield %x
  }
  return %r
}",
        )
        .unwrap();
        assert_eq!(cse(&mut func), 1);
        verify_function(&func).unwrap();
    }

    #[test]
    fn nested_defs_do_not_leak_to_siblings() {
        let mut func = parse_function(
            "func @f(%a: f32, %c: i1) {
  %r = if %c {
    %x = add %a, %a : f32
    yield %x
  } else {
    %y = add %a, %a : f32
    yield %y
  }
  return %r
}",
        )
        .unwrap();
        // The two adds live in sibling regions: neither dominates the other.
        assert_eq!(cse(&mut func), 0);
        verify_function(&func).unwrap();
    }

    #[test]
    fn does_not_merge_loads() {
        let mut func = parse_function(
            "func @f(%m: memref<?xf32, global>, %i: index) {
  %x = load %m[%i] : f32
  store %x, %m[%i]
  %y = load %m[%i] : f32
  %z = add %x, %y : f32
  return %z
}",
        )
        .unwrap();
        assert_eq!(cse(&mut func), 0);
    }

    #[test]
    fn distinguishes_different_attributes() {
        let mut func = parse_function(
            "func @f() {\n  %a = const 5 : i32\n  %b = const 6 : i32\n  %c = add %a, %b : i32\n  return %c\n}",
        )
        .unwrap();
        assert_eq!(cse(&mut func), 0);
    }
}
