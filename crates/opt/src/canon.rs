//! Canonicalization: constant folding, algebraic identities, and dead
//! conditional elimination.

use std::collections::HashMap;

use respec_ir::walk::replace_uses_in_region;
use respec_ir::{BinOp, CmpPred, Function, OpId, OpKind, RegionId, ScalarType, UnOp, Value};

#[derive(Clone, Copy, Debug, PartialEq)]
enum Const {
    Int(i64, ScalarType),
    Float(f64, ScalarType),
}

/// Runs canonicalization to a fixpoint (bounded); returns the number of
/// rewrites performed.
pub fn canonicalize(func: &mut Function) -> usize {
    let mut total = 0;
    for _ in 0..8 {
        let n = run_once(func);
        total += n;
        if n == 0 {
            break;
        }
    }
    total
}

fn run_once(func: &mut Function) -> usize {
    let mut consts: HashMap<Value, Const> = HashMap::new();
    let mut rewrites = 0;
    canon_region(func, func.body(), &mut consts, &mut rewrites);
    rewrites
}

fn truncate(v: i64, ty: ScalarType) -> i64 {
    match ty {
        ScalarType::I1 => v & 1,
        ScalarType::I32 => v as i32 as i64,
        _ => v,
    }
}

fn canon_region(
    func: &mut Function,
    region: RegionId,
    consts: &mut HashMap<Value, Const>,
    rewrites: &mut usize,
) {
    let ops = func.region(region).ops.clone();
    let mut replacements: HashMap<Value, Value> = HashMap::new();
    for op_id in ops {
        // Apply pending replacements to this op's operands first.
        if !replacements.is_empty() {
            for operand in &mut func.op_mut(op_id).operands {
                if let Some(&n) = replacements.get(operand) {
                    *operand = n;
                }
            }
        }
        let op = func.op(op_id).clone();
        match &op.kind {
            OpKind::ConstInt { value, ty } => {
                consts.insert(op.results[0], Const::Int(*value, *ty));
            }
            OpKind::ConstFloat { value, ty } => {
                consts.insert(op.results[0], Const::Float(*value, *ty));
            }
            OpKind::Binary(b) => {
                if let Some(folded) = fold_binary(*b, op.operands[0], op.operands[1], consts) {
                    rewrite_to_const(func, op_id, folded, consts, rewrites);
                } else if let Some(repl) =
                    identity_binary(*b, op.operands[0], op.operands[1], consts)
                {
                    // The op becomes dead once its result is replaced; DCE
                    // removes it.
                    replacements.insert(op.results[0], repl);
                    *rewrites += 1;
                }
            }
            OpKind::Unary(u) => {
                if let Some(c) = consts.get(&op.operands[0]).copied() {
                    if let Some(folded) = fold_unary(*u, c) {
                        rewrite_to_const(func, op_id, folded, consts, rewrites);
                    }
                }
            }
            OpKind::Cmp(p) => {
                let (l, r) = (
                    consts.get(&op.operands[0]).copied(),
                    consts.get(&op.operands[1]).copied(),
                );
                if let (Some(l), Some(r)) = (l, r) {
                    if let Some(flag) = fold_cmp(*p, l, r) {
                        rewrite_to_const(
                            func,
                            op_id,
                            Const::Int(flag as i64, ScalarType::I1),
                            consts,
                            rewrites,
                        );
                    }
                }
            }
            OpKind::Select => {
                if let Some(Const::Int(c, _)) = consts.get(&op.operands[0]).copied() {
                    let chosen = op.operands[if c != 0 { 1 } else { 2 }];
                    replacements.insert(op.results[0], chosen);
                    *rewrites += 1;
                }
            }
            OpKind::Cast { to } => {
                if let Some(c) = consts.get(&op.operands[0]).copied() {
                    let folded = match (c, to.is_float()) {
                        (Const::Int(v, _), false) => Const::Int(truncate(v, *to), *to),
                        (Const::Int(v, _), true) => Const::Float(v as f64, *to),
                        (Const::Float(v, _), false) => Const::Int(truncate(v as i64, *to), *to),
                        (Const::Float(v, _), true) => {
                            let w = if *to == ScalarType::F32 {
                                v as f32 as f64
                            } else {
                                v
                            };
                            Const::Float(w, *to)
                        }
                    };
                    rewrite_to_const(func, op_id, folded, consts, rewrites);
                }
            }
            _ => {
                for &r in &op.regions.clone() {
                    canon_region(func, r, consts, rewrites);
                }
            }
        }
    }
    if !replacements.is_empty() {
        replace_uses_in_region(func, region, &replacements);
        // Replacements may flow into sibling regions through yields — the
        // conservative fix is a second pass at the parent level, which the
        // fixpoint loop provides.
    }
}

fn rewrite_to_const(
    func: &mut Function,
    op_id: OpId,
    c: Const,
    consts: &mut HashMap<Value, Const>,
    rewrites: &mut usize,
) {
    let result = func.op(op_id).results[0];
    let op = func.op_mut(op_id);
    op.kind = match c {
        Const::Int(value, ty) => OpKind::ConstInt { value, ty },
        Const::Float(value, ty) => OpKind::ConstFloat { value, ty },
    };
    op.operands.clear();
    consts.insert(result, c);
    *rewrites += 1;
}

fn fold_binary(b: BinOp, l: Value, r: Value, consts: &HashMap<Value, Const>) -> Option<Const> {
    let (lc, rc) = (consts.get(&l).copied()?, consts.get(&r).copied()?);
    match (lc, rc) {
        (Const::Int(a, ty), Const::Int(c, _)) => {
            let v = match b {
                BinOp::Add => a.wrapping_add(c),
                BinOp::Sub => a.wrapping_sub(c),
                BinOp::Mul => a.wrapping_mul(c),
                BinOp::Div => {
                    if c == 0 {
                        return None;
                    }
                    a.wrapping_div(c)
                }
                BinOp::Rem => {
                    if c == 0 {
                        return None;
                    }
                    a.wrapping_rem(c)
                }
                BinOp::And => a & c,
                BinOp::Or => a | c,
                BinOp::Xor => a ^ c,
                BinOp::Shl => a.wrapping_shl(c as u32 & 63),
                BinOp::Shr => a.wrapping_shr(c as u32 & 63),
                BinOp::Min => a.min(c),
                BinOp::Max => a.max(c),
                BinOp::Pow => return None,
            };
            Some(Const::Int(truncate(v, ty), ty))
        }
        (Const::Float(a, ty), Const::Float(c, _)) => {
            let v = match b {
                BinOp::Add => a + c,
                BinOp::Sub => a - c,
                BinOp::Mul => a * c,
                BinOp::Div => a / c,
                BinOp::Rem => a % c,
                BinOp::Min => a.min(c),
                BinOp::Max => a.max(c),
                BinOp::Pow => a.powf(c),
                _ => return None,
            };
            let v = if ty == ScalarType::F32 {
                v as f32 as f64
            } else {
                v
            };
            Some(Const::Float(v, ty))
        }
        _ => None,
    }
}

/// `x+0`, `x*1`, `x-0`, `x/1`, `0+x`, `1*x` → `x`.
fn identity_binary(b: BinOp, l: Value, r: Value, consts: &HashMap<Value, Const>) -> Option<Value> {
    let is_zero = |v: Value| {
        matches!(consts.get(&v), Some(Const::Int(0, _)))
            || matches!(consts.get(&v), Some(Const::Float(z, _)) if *z == 0.0)
    };
    let is_one = |v: Value| {
        matches!(consts.get(&v), Some(Const::Int(1, _)))
            || matches!(consts.get(&v), Some(Const::Float(o, _)) if *o == 1.0)
    };
    match b {
        BinOp::Add => {
            if is_zero(r) {
                Some(l)
            } else if is_zero(l) {
                Some(r)
            } else {
                None
            }
        }
        BinOp::Sub => is_zero(r).then_some(l),
        BinOp::Mul => {
            if is_one(r) {
                Some(l)
            } else if is_one(l) {
                Some(r)
            } else {
                None
            }
        }
        BinOp::Div => is_one(r).then_some(l),
        _ => None,
    }
}

fn fold_unary(u: UnOp, c: Const) -> Option<Const> {
    match c {
        Const::Int(v, ty) => {
            let out = match u {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Abs => v.wrapping_abs(),
                UnOp::Not => {
                    if ty == ScalarType::I1 {
                        (v == 0) as i64
                    } else {
                        !v
                    }
                }
                _ => return None,
            };
            Some(Const::Int(truncate(out, ty), ty))
        }
        Const::Float(v, ty) => {
            let out = match u {
                UnOp::Neg => -v,
                UnOp::Abs => v.abs(),
                UnOp::Sqrt => v.sqrt(),
                UnOp::Floor => v.floor(),
                UnOp::Ceil => v.ceil(),
                _ => return None,
            };
            let out = if ty == ScalarType::F32 {
                out as f32 as f64
            } else {
                out
            };
            Some(Const::Float(out, ty))
        }
    }
}

fn fold_cmp(p: CmpPred, l: Const, r: Const) -> Option<bool> {
    match (l, r) {
        (Const::Int(a, _), Const::Int(b, _)) => Some(match p {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::Lt => a < b,
            CmpPred::Le => a <= b,
            CmpPred::Gt => a > b,
            CmpPred::Ge => a >= b,
        }),
        (Const::Float(a, _), Const::Float(b, _)) => Some(match p {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::Lt => a < b,
            CmpPred::Le => a <= b,
            CmpPred::Gt => a > b,
            CmpPred::Ge => a >= b,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respec_ir::parse_function;

    #[test]
    fn folds_constant_arithmetic() {
        let mut func = parse_function(
            "func @f() {\n  %a = const 6 : i32\n  %b = const 7 : i32\n  %c = mul %a, %b : i32\n  return %c\n}",
        )
        .unwrap();
        assert!(canonicalize(&mut func) > 0);
        let text = func.to_string();
        assert!(text.contains("const 42"), "{text}");
    }

    #[test]
    fn folds_through_casts_and_cmp() {
        let mut func = parse_function(
            "func @f() {
  %a = const 5 : i32
  %b = cast %a : f32
  %c = fconst 4.0 : f32
  %d = cmp gt %b, %c
  return %d
}",
        )
        .unwrap();
        canonicalize(&mut func);
        let text = func.to_string();
        assert!(text.contains("const 1 : i1"), "{text}");
    }

    #[test]
    fn applies_mul_one_identity() {
        let mut func = parse_function(
            "func @f(%x: f32) {\n  %one = fconst 1.0 : f32\n  %y = mul %x, %one : f32\n  return %y\n}",
        )
        .unwrap();
        canonicalize(&mut func);
        let text = func.to_string();
        // The return must now use %x directly.
        assert!(text.contains("return %0"), "{text}");
    }

    #[test]
    fn folds_select_with_known_condition() {
        let mut func = parse_function(
            "func @f(%a: f32, %b: f32) {
  %t = const 1 : i1
  %s = select %t, %a, %b : f32
  return %s
}",
        )
        .unwrap();
        canonicalize(&mut func);
        assert!(func.to_string().contains("return %0"));
    }

    #[test]
    fn identity_add_zero_index() {
        let mut func = parse_function(
            "func @f(%x: index) {\n  %z = const 0 : index\n  %y = add %x, %z : index\n  return %y\n}",
        )
        .unwrap();
        canonicalize(&mut func);
        assert!(func.to_string().contains("return %0"));
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let mut func = parse_function(
            "func @f() {\n  %a = const 6 : i32\n  %b = const 0 : i32\n  %c = div %a, %b : i32\n  return %c\n}",
        )
        .unwrap();
        canonicalize(&mut func);
        assert!(func.to_string().contains("div"));
    }
}
