//! Alternative code paths (§VI): compile-time multi-versioning of kernels.
//!
//! The kernel body is replicated into the multi-region
//! [`Alternatives`](OpKind::Alternatives) operation, one region per
//! coarsening configuration. Decision points later in the pipeline (shared
//! memory pruning, register/spill pruning, timing-driven optimization)
//! narrow the set and finally *select* one region, which is then inlined.

use std::collections::HashMap;

use respec_ir::walk::clone_region;
use respec_ir::{Function, OpId, OpKind, RegionId};

use crate::coarsen::{coarsen_function_region, CoarsenConfig, CoarsenError};

/// One surviving alternative: its region index and configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct Alternative {
    /// Region index inside the alternatives op.
    pub region_index: usize,
    /// The coarsening configuration that produced the region.
    pub config: CoarsenConfig,
}

/// Replicates the kernel body into an `alternatives` op and applies one
/// coarsening configuration per region. Configurations whose coarsening is
/// illegal are dropped (with the identity configuration always legal).
///
/// Returns the alternatives op and the surviving configurations.
///
/// # Errors
///
/// Returns an error if every configuration (including identity, if given)
/// fails, or if the function has no body to version.
pub fn generate_alternatives(
    func: &mut Function,
    configs: &[CoarsenConfig],
) -> Result<(OpId, Vec<Alternative>), CoarsenError> {
    let body = func.body();
    let body_ops = func.region(body).ops.clone();
    if body_ops.is_empty() {
        return Err(CoarsenError::from_message("function body is empty"));
    }
    let (ret, work): (Vec<OpId>, Vec<OpId>) = body_ops
        .iter()
        .partition(|&&op| matches!(func.op(op).kind, OpKind::Return));

    // Move the current body into a template region terminated by yield.
    let template = func.new_region();
    for op in &work {
        func.push_op(template, *op);
    }
    let y = func.make_op(OpKind::Yield, vec![], vec![], vec![]);
    func.push_op(template, y);

    let mut regions = Vec::new();
    let mut survivors = Vec::new();
    for cfg in configs {
        let mut map = HashMap::new();
        let region = clone_region(func, template, &mut map);
        match coarsen_function_region(func, region, *cfg) {
            Ok(()) => {
                survivors.push(Alternative {
                    region_index: regions.len(),
                    config: *cfg,
                });
                regions.push(region);
            }
            Err(_) => {
                // Illegal configuration: drop the region (it stays detached
                // in the arena, unreferenced).
            }
        }
    }
    if regions.is_empty() {
        return Err(CoarsenError::from_message(
            "no coarsening configuration survived legality checks",
        ));
    }

    let alt = func.make_op(
        OpKind::Alternatives { selected: None },
        vec![],
        vec![],
        regions,
    );
    let body = func.body();
    func.region_mut(body).ops = vec![alt];
    for op in ret {
        func.push_op(body, op);
    }
    Ok((alt, survivors))
}

/// Marks one alternative as selected (kept for profiling dispatch).
///
/// # Panics
///
/// Panics if `alt` is not an alternatives op or the index is out of range.
pub fn select_alternative(func: &mut Function, alt: OpId, region_index: usize) {
    match &mut func.op_mut(alt).kind {
        OpKind::Alternatives { selected } => *selected = Some(region_index),
        other => panic!("expected alternatives op, found {other:?}"),
    }
    assert!(
        region_index < func.op(alt).regions.len(),
        "selected index out of range"
    );
}

/// Replaces the alternatives op by the contents of the selected region (the
/// paper's final re-compilation that "removes all the other alternatives").
///
/// # Panics
///
/// Panics if `alt` is not an alternatives op or no/invalid selection is set
/// and `region_index` is `None`.
pub fn materialize_selected(func: &mut Function, alt: OpId, region_index: Option<usize>) {
    let (region, pos, parent) = {
        let op = func.op(alt);
        let idx = match (&op.kind, region_index) {
            (_, Some(i)) => i,
            (OpKind::Alternatives { selected: Some(i) }, None) => *i,
            (OpKind::Alternatives { selected: None }, None) => {
                panic!("no alternative selected and none provided")
            }
            (other, _) => panic!("expected alternatives op, found {other:?}"),
        };
        let region = op.regions[idx];
        let parent =
            crate::interleave::parent_region(func, alt).expect("alternatives op is attached");
        let pos = func
            .region(parent)
            .ops
            .iter()
            .position(|&o| o == alt)
            .expect("op is in its parent");
        (region, pos, parent)
    };
    // Splice the region's ops (minus the terminator) in place of the op.
    let mut ops = func.region(region).ops.clone();
    if let Some(&last) = ops.last() {
        if matches!(func.op(last).kind, OpKind::Yield) {
            ops.pop();
        }
    }
    let parent_ops = &mut func.region_mut(parent).ops;
    parent_ops.remove(pos);
    for (i, op) in ops.into_iter().enumerate() {
        parent_ops.insert(pos + i, op);
    }
}

/// Finds the single alternatives op of a kernel, if any.
pub fn find_alternatives(func: &Function) -> Option<OpId> {
    func.region(func.body())
        .ops
        .iter()
        .copied()
        .find(|&op| matches!(func.op(op).kind, OpKind::Alternatives { .. }))
}

/// Clones one alternative region into a standalone copy of the kernel
/// function (used to compile/measure a single version).
pub fn extract_alternative(func: &Function, alt: OpId, region_index: usize) -> Function {
    let mut copy = func.clone();
    materialize_selected(&mut copy, alt, Some(region_index));
    copy
}

/// Region id of one alternative (for analyses over a single version).
pub fn alternative_region(func: &Function, alt: OpId, region_index: usize) -> RegionId {
    func.op(alt).regions[region_index]
}

#[cfg(test)]
mod tests {
    use super::*;
    use respec_ir::{parse_function, verify_function};

    const KERNEL: &str = "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c64 = const 64 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    %sm = alloc() : memref<64xf32, shared>
    parallel<thread> (%tx, %ty, %tz) to (%c64, %c1, %c1) {
      %w = mul %bx, %c64 : index
      %i = add %w, %tx : index
      %v = load %m[%i] : f32
      store %v, %sm[%tx]
      barrier<thread>
      %r = load %sm[%tx] : f32
      store %r, %m[%i]
      yield
    }
    yield
  }
  return
}";

    fn configs() -> Vec<CoarsenConfig> {
        vec![
            CoarsenConfig::identity(),
            CoarsenConfig {
                block: [2, 1, 1],
                thread: [1, 1, 1],
            },
            CoarsenConfig {
                block: [1, 1, 1],
                thread: [2, 1, 1],
            },
            CoarsenConfig {
                block: [2, 1, 1],
                thread: [2, 1, 1],
            },
        ]
    }

    #[test]
    fn generates_one_region_per_config() {
        let mut func = parse_function(KERNEL).unwrap();
        let (alt, survivors) = generate_alternatives(&mut func, &configs()).unwrap();
        verify_function(&func).unwrap();
        assert_eq!(survivors.len(), 4);
        assert_eq!(func.op(alt).regions.len(), 4);
        // Each region has different shared usage: identity 1 alloc,
        // block-2 has 2 allocs.
        let launches0 =
            respec_ir::kernel::block_parallels_in(&func, alternative_region(&func, alt, 0));
        assert_eq!(launches0.len(), 1);
    }

    #[test]
    fn illegal_configs_are_dropped() {
        // A thread factor of 3 does not divide 64: dropped.
        let mut func = parse_function(KERNEL).unwrap();
        let cfgs = vec![
            CoarsenConfig::identity(),
            CoarsenConfig {
                block: [1, 1, 1],
                thread: [3, 1, 1],
            },
        ];
        let (_, survivors) = generate_alternatives(&mut func, &cfgs).unwrap();
        assert_eq!(survivors.len(), 1);
        verify_function(&func).unwrap();
    }

    #[test]
    fn select_and_materialize_round_trip() {
        let mut func = parse_function(KERNEL).unwrap();
        let (alt, survivors) = generate_alternatives(&mut func, &configs()).unwrap();
        select_alternative(&mut func, alt, survivors[2].region_index);
        verify_function(&func).unwrap();
        materialize_selected(&mut func, alt, None);
        verify_function(&func).unwrap();
        // After materialization the kernel is a plain coarsened kernel.
        assert!(find_alternatives(&func).is_none());
        let launches = respec_ir::kernel::analyze_function(&func).unwrap();
        assert_eq!(
            launches[0].block_dims,
            vec![32, 1, 1],
            "thread-2 variant selected"
        );
    }

    #[test]
    fn extract_alternative_leaves_original_untouched() {
        let mut func = parse_function(KERNEL).unwrap();
        let (alt, survivors) = generate_alternatives(&mut func, &configs()).unwrap();
        let before = func.to_string();
        let extracted = extract_alternative(&func, alt, survivors[1].region_index);
        verify_function(&extracted).unwrap();
        assert_eq!(func.to_string(), before);
        assert!(find_alternatives(&extracted).is_none());
    }

    #[test]
    fn all_illegal_is_an_error() {
        let mut func = parse_function(KERNEL).unwrap();
        let cfgs = vec![CoarsenConfig {
            block: [1, 1, 1],
            thread: [5, 1, 1],
        }];
        assert!(generate_alternatives(&mut func, &cfgs).is_err());
    }
}
