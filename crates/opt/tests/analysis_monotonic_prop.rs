//! Property test: the transformation pipeline is *analysis-monotonic* —
//! coarsening plus cleanup never introduces a static race or
//! barrier-divergence error the uncoarsened kernel lacked.
//!
//! Random CUDA kernels (guards, loops, shared staging, barriers) are
//! compiled, analyzed to capture the baseline, coarsened with random
//! configurations, and re-analyzed: `introduced_errors` must stay empty.
//! This is the compile-time counterpart of the semantics property in
//! `coarsen_semantics_prop.rs`.

use proptest::prelude::*;
use respec_analyze::{analyze_function, introduced_errors, Baseline};
use respec_frontend::{compile_cuda, KernelSpec};
use respec_opt::{coarsen_function, optimize, CoarsenConfig};

/// A random kernel-body recipe that always produces a valid kernel.
#[derive(Clone, Debug)]
struct Recipe {
    use_guard: bool,
    use_shared: bool,
    mirror_read: bool,
    loop_trips: u8,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (any::<bool>(), any::<bool>(), any::<bool>(), 1u8..6).prop_map(
        |(use_guard, use_shared, mirror_read, loop_trips)| Recipe {
            use_guard,
            use_shared,
            mirror_read,
            loop_trips,
        },
    )
}

fn source_for(r: &Recipe) -> String {
    let mut body = String::new();
    body.push_str("    int i = blockIdx.x * blockDim.x + threadIdx.x;\n");
    body.push_str("    int tx = threadIdx.x;\n");
    if r.use_guard {
        body.push_str("    if (i >= n) return;\n");
    }
    body.push_str("    float v = in[i];\n");
    if r.use_shared {
        body.push_str("    tile[tx] = v * 2.0f;\n    __syncthreads();\n");
        if r.mirror_read {
            body.push_str("    v = v + tile[63 - tx];\n");
        } else {
            body.push_str("    v = v + tile[tx];\n");
        }
    }
    body.push_str(&format!(
        "    for (int k = 0; k < {}; k++) {{ v = v + 0.5f; }}\n",
        r.loop_trips
    ));
    body.push_str("    out[i] = v;\n");
    format!(
        "__global__ void k(float* out, float* in, int n) {{\n{}{body}}}\n",
        if r.use_shared {
            "    __shared__ float tile[64];\n"
        } else {
            ""
        }
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coarsening_never_introduces_analysis_errors(
        r in recipe(),
        bf in 1i64..6,
        tf_pow in 0u32..4,
    ) {
        let src = source_for(&r);
        let module = compile_cuda(&src, &[KernelSpec::new("k", [64, 1, 1])]).expect("compiles");
        let func = module.function("k").expect("kernel");
        let base = Baseline::of(func);
        let cfg = CoarsenConfig {
            block: [bf, 1, 1],
            thread: [1 << tf_pow, 1, 1],
        };
        let mut version = func.clone();
        if coarsen_function(&mut version, cfg).is_ok() {
            optimize(&mut version);
            let report = analyze_function(&version);
            let introduced = introduced_errors(&base, &report);
            prop_assert!(
                introduced.is_empty(),
                "source:\n{}\nconfig: {} introduced: {:#?}",
                src, cfg, introduced
            );
        }
    }
}
