//! Property test: unroll-and-interleave is semantics-preserving.
//!
//! Random CUDA kernels (guards, loops, shared staging, barriers) are
//! compiled, coarsened with random legal configurations, executed on the
//! simulator, and compared element-for-element with the uncoarsened run —
//! the mechanized version of the paper's §VII-A output verification.

use proptest::prelude::*;
use respec_frontend::{compile_cuda, KernelSpec};
use respec_opt::{coarsen_function, optimize, CoarsenConfig};
use respec_sim::{targets, GpuSim, KernelArg};

/// A random kernel-body recipe that always produces a valid kernel.
#[derive(Clone, Debug)]
struct Recipe {
    use_guard: bool,
    use_shared: bool,
    loop_trips: u8,
    ops: Vec<u8>,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        any::<bool>(),
        any::<bool>(),
        1u8..6,
        prop::collection::vec(any::<u8>(), 1..6),
    )
        .prop_map(|(use_guard, use_shared, loop_trips, ops)| Recipe {
            use_guard,
            use_shared,
            loop_trips,
            ops,
        })
}

fn source_for(r: &Recipe) -> String {
    let mut body = String::new();
    body.push_str("    int i = blockIdx.x * blockDim.x + threadIdx.x;\n");
    body.push_str("    int tx = threadIdx.x;\n");
    if r.use_guard {
        body.push_str("    if (i >= n) return;\n");
    }
    body.push_str("    float v = in[i];\n");
    if r.use_shared {
        body.push_str("    tile[tx] = v * 2.0f;\n    __syncthreads();\n");
        body.push_str("    v = v + tile[63 - tx];\n");
    }
    body.push_str(&format!(
        "    for (int k = 0; k < {}; k++) {{\n",
        r.loop_trips
    ));
    for (j, op) in r.ops.iter().enumerate() {
        let stmt = match op % 5 {
            0 => "        v = v + 1.5f;\n".to_string(),
            1 => "        v = v * 1.125f;\n".to_string(),
            2 => format!("        v = v + (float)k * 0.25f + {}.0f;\n", j),
            3 => "        v = fminf(v, 1.0e6f);\n".to_string(),
            _ => "        v = v - 0.5f;\n".to_string(),
        };
        body.push_str(&stmt);
    }
    body.push_str("    }\n");
    body.push_str("    out[i] = v;\n");
    format!(
        "__global__ void k(float* out, float* in, int n) {{\n{}{body}}}\n",
        if r.use_shared {
            "    __shared__ float tile[64];\n"
        } else {
            ""
        }
    )
}

fn run(src: &str, cfg: Option<CoarsenConfig>) -> Option<Vec<f32>> {
    let module = compile_cuda(src, &[KernelSpec::new("k", [64, 1, 1])]).expect("compiles");
    let mut func = module.function("k").expect("kernel").clone();
    if let Some(cfg) = cfg {
        if coarsen_function(&mut func, cfg).is_err() {
            return None; // illegal config: nothing to compare
        }
        optimize(&mut func);
    }
    respec_ir::verify_function(&func).expect("valid after transforms");
    let n = 64 * 12; // 12 blocks, deliberately not a multiple of most factors
    let mut sim = GpuSim::new(targets::a4000());
    let input: Vec<f32> = (0..n).map(|i| (i as f32 * 0.173).sin()).collect();
    let ib = sim.mem.alloc_f32(&input);
    let ob = sim.mem.alloc_f32(&vec![0.0; n]);
    sim.launch(
        &func,
        [12, 1, 1],
        &[
            KernelArg::Buf(ob),
            KernelArg::Buf(ib),
            KernelArg::I32(n as i32),
        ],
        32,
    )
    .expect("launches");
    Some(sim.mem.read_f32(ob))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coarsening_preserves_random_kernel_semantics(
        r in recipe(),
        bf in 1i64..6,
        tf_pow in 0u32..4,
    ) {
        let src = source_for(&r);
        let baseline = run(&src, None).expect("baseline always runs");
        let cfg = CoarsenConfig {
            block: [bf, 1, 1],
            thread: [1 << tf_pow, 1, 1],
        };
        if let Some(out) = run(&src, Some(cfg)) {
            prop_assert_eq!(out, baseline, "source:\n{}\nconfig: {}", src, cfg);
        }
    }
}
