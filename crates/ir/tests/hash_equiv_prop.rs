//! Property pin for the structural hash: the direct IR walk in
//! `respec_ir::structural_hash` must induce exactly the same equivalence
//! relation as hashing the canonical printed text (the version-1 scheme).
//!
//! Two functions must hash equal iff their printed forms are
//! byte-identical — the tuning cache's keys and the serve daemon's
//! request-coalescing key both lean on this contract.

use std::fmt::Write as _;

use proptest::prelude::*;
use respec_ir::{
    parse_function, parse_module, structural_hash, BinOp, FuncBuilder, Function, MemSpace,
    ParLevel, ScalarType, StableHasher, Type,
};

/// The reference relation: FNV-1a over the canonical printed text, which
/// is what `structural_hash` streamed before it walked the IR directly.
fn print_hash(func: &Function) -> u64 {
    let mut w = StableHasher::new();
    write!(w, "{func}").expect("hash writer is infallible");
    w.finish()
}

/// Asserts the equivalence property on one pair.
fn assert_equiv(a: &Function, b: &Function) {
    let prints_equal = print_hash(a) == print_hash(b);
    let hashes_equal = structural_hash(a) == structural_hash(b);
    assert_eq!(
        prints_equal, hashes_equal,
        "print equality and structural-hash equality must agree:\n--- a ---\n{a}\n--- b ---\n{b}"
    );
}

/// A small deterministic kernel generator: straight-line arithmetic inside
/// the canonical block/thread nest, with optional loop and branch nesting
/// driven by the recipe bytes. Unlike `roundtrip_prop.rs`, the recipe is a
/// plain byte vector so two *different* recipes frequently produce
/// *textually identical* functions (e.g. bytes that select the same op
/// sequence) — exactly the collision-heavy regime the equivalence relation
/// must survive.
fn build_kernel(name: &str, recipe: &[u8]) -> Function {
    let mut func = Function::new(name);
    let grid = func.add_param(Type::index());
    let mem = func.add_param(Type::MemRef(respec_ir::MemRefType::new_1d_dynamic(
        ScalarType::F32,
        MemSpace::Global,
    )));
    let mut b = FuncBuilder::new(&mut func);
    let c32 = b.const_index(32);
    b.parallel(ParLevel::Block, &[grid], |b, bids| {
        b.parallel(ParLevel::Thread, &[c32], |b, tids| {
            let base = b.mul(bids[0], c32);
            let idx = b.add(base, tids[0]);
            let seed = b.load(mem, &[idx]);
            let mut pool = vec![seed];
            for chunk in recipe.chunks(3) {
                let sel = chunk[0] % 6;
                let x = pool[chunk.get(1).map_or(0, |&i| i as usize) % pool.len()];
                let y = pool[chunk.get(2).map_or(0, |&i| i as usize) % pool.len()];
                match sel {
                    0 => pool.push(b.binary(BinOp::Add, x, y)),
                    1 => pool.push(b.binary(BinOp::Mul, x, y)),
                    2 => pool.push(b.binary(BinOp::Min, x, y)),
                    3 => {
                        // A loop whose body folds the pool head.
                        let lb = b.const_index(0);
                        let ub = b.const_index((chunk[0] % 4) as i64 + 1);
                        let st = b.const_index(1);
                        let r = b.for_loop(lb, ub, st, &[x], |b, _iv, iters| {
                            vec![b.binary(BinOp::Add, iters[0], y)]
                        });
                        pool.push(r[0]);
                    }
                    4 => {
                        let t = b.const_bool(chunk[0] % 2 == 0);
                        let r = b.if_op(
                            t,
                            &[Type::Scalar(ScalarType::F32)],
                            |b| vec![b.binary(BinOp::Max, x, y)],
                            |_b| vec![x],
                        );
                        pool.push(r[0]);
                    }
                    _ => {
                        let c = b.const_f32(f32::from(chunk[0]));
                        pool.push(b.binary(BinOp::Sub, x, c));
                    }
                }
            }
            let out = *pool.last().expect("pool is never empty");
            b.store(out, mem, &[idx]);
        });
    });
    b.ret(&[]);
    func
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random pairs — including pairs built from different recipes that
    /// happen to print identically — must agree between the two relations.
    #[test]
    fn hash_equality_tracks_print_equality(
        ra in prop::collection::vec(any::<u8>(), 0..24),
        rb in prop::collection::vec(any::<u8>(), 0..24),
    ) {
        let a = build_kernel("k", &ra);
        let b = build_kernel("k", &rb);
        assert_equiv(&a, &b);
        // Arena renumbering through print → parse must be invisible.
        let a2 = parse_function(&a.to_string()).expect("printed function parses");
        prop_assert_eq!(structural_hash(&a), structural_hash(&a2));
        prop_assert_eq!(print_hash(&a), print_hash(&a2));
    }

    /// A name change alone must flip both relations the same way.
    #[test]
    fn renamed_functions_disagree_in_both_relations(
        r in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let a = build_kernel("k", &r);
        let b = build_kernel("k2", &r);
        prop_assert_ne!(print_hash(&a), print_hash(&b));
        prop_assert_ne!(structural_hash(&a), structural_hash(&b));
    }
}

/// The committed Rodinia corpus: every pair of real frontend-output
/// functions must agree between the two relations (this sweeps loads,
/// stores, barriers, shared-memory allocs, while loops, calls — shapes the
/// random generator does not reach).
#[test]
fn rodinia_corpus_relations_agree_pairwise() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("tests/goldens");
    let mut funcs: Vec<Function> = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/goldens exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("read golden");
        let module = parse_module(&src).expect("golden parses");
        funcs.extend(module.functions().cloned());
    }
    assert!(funcs.len() >= 15, "corpus should cover all apps");
    for a in &funcs {
        // Reparse: same print, new arena layout.
        let b = parse_function(&a.to_string()).expect("golden function reprints");
        assert_eq!(structural_hash(a), structural_hash(&b), "{}", a.name());
    }
    for (i, a) in funcs.iter().enumerate() {
        for b in &funcs[i + 1..] {
            assert_equiv(a, b);
        }
    }
}
