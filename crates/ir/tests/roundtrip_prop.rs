//! Property tests: every randomly generated well-formed function must
//! verify, print, and re-parse to a textually identical function — and the
//! same fixed-point property must hold for the committed Rodinia corpus
//! (the golden snapshots in `tests/goldens/`).

use proptest::prelude::*;
use respec_ir::{
    parse_function, parse_module, verify_function, BinOp, CmpPred, FuncBuilder, Function, MemSpace,
    ParLevel, ScalarType, Type, UnOp, Value,
};

/// A recipe for one random operation appended to a straight-line pool.
#[derive(Clone, Debug)]
enum Step {
    ConstI(i64),
    ConstF(f64),
    Bin(u8, usize, usize),
    Un(u8, usize),
    Cmp(u8, usize, usize),
    SelectLike(usize, usize, usize),
    ForLoop(u8, Vec<Step>),
    IfCond(usize, Vec<Step>, Vec<Step>),
}

fn step_strategy(depth: u32) -> impl Strategy<Value = Step> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(Step::ConstI),
        (-100.0f64..100.0).prop_map(Step::ConstF),
        (any::<u8>(), any::<usize>(), any::<usize>()).prop_map(|(o, a, b)| Step::Bin(o, a, b)),
        (any::<u8>(), any::<usize>()).prop_map(|(o, a)| Step::Un(o, a)),
        (any::<u8>(), any::<usize>(), any::<usize>()).prop_map(|(o, a, b)| Step::Cmp(o, a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(c, a, b)| Step::SelectLike(c, a, b)),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            (any::<u8>(), prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(n, s)| Step::ForLoop(n, s)),
            (
                any::<usize>(),
                prop::collection::vec(inner.clone(), 1..4),
                prop::collection::vec(inner, 1..4)
            )
                .prop_map(|(c, t, e)| Step::IfCond(c, t, e)),
        ]
    })
}

/// Pools of values by scalar type, so randomly chosen operands always have
/// compatible types.
struct Pools {
    f32s: Vec<Value>,
    i32s: Vec<Value>,
    bools: Vec<Value>,
}

fn pick(pool: &[Value], idx: usize) -> Value {
    pool[idx % pool.len()]
}

fn apply_steps(b: &mut FuncBuilder<'_>, pools: &mut Pools, steps: &[Step]) {
    for step in steps {
        match step {
            Step::ConstI(v) => {
                let c = b.const_i32(*v as i32);
                pools.i32s.push(c);
            }
            Step::ConstF(v) => {
                let c = b.const_f32(*v as f32);
                pools.f32s.push(c);
            }
            Step::Bin(o, a, c) => {
                // Pow/Div/Rem excluded on ints to avoid div-by-zero concerns in
                // later interpreter-based property tests reusing this generator.
                let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max];
                let op = ops[*o as usize % ops.len()];
                let x = pick(&pools.f32s, *a);
                let y = pick(&pools.f32s, *c);
                let r = b.binary(op, x, y);
                pools.f32s.push(r);
            }
            Step::Un(o, a) => {
                let ops = [UnOp::Neg, UnOp::Abs, UnOp::Floor, UnOp::Exp, UnOp::Sqrt];
                let op = ops[*o as usize % ops.len()];
                let x = pick(&pools.f32s, *a);
                let r = b.unary(op, x);
                pools.f32s.push(r);
            }
            Step::Cmp(o, a, c) => {
                let pred = CmpPred::ALL[*o as usize % CmpPred::ALL.len()];
                let x = pick(&pools.f32s, *a);
                let y = pick(&pools.f32s, *c);
                let r = b.cmp(pred, x, y);
                pools.bools.push(r);
            }
            Step::SelectLike(c, x, y) => {
                let cond = pick(&pools.bools, *c);
                let t = pick(&pools.f32s, *x);
                let e = pick(&pools.f32s, *y);
                let r = b.select(cond, t, e);
                pools.f32s.push(r);
            }
            Step::ForLoop(n, body) => {
                let lb = b.const_index(0);
                let ub = b.const_index((*n % 8) as i64 + 1);
                let step_v = b.const_index(1);
                let init = pick(&pools.f32s, *n as usize);
                let results = b.for_loop(lb, ub, step_v, &[init], |b, _iv, iters| {
                    let mut inner = Pools {
                        f32s: {
                            let mut v = pools.f32s.clone();
                            v.push(iters[0]);
                            v
                        },
                        i32s: pools.i32s.clone(),
                        bools: pools.bools.clone(),
                    };
                    apply_steps(b, &mut inner, body);
                    vec![*inner.f32s.last().expect("pool is never empty")]
                });
                pools.f32s.push(results[0]);
            }
            Step::IfCond(c, then_steps, else_steps) => {
                let cond = pick(&pools.bools, *c);
                let results = b.if_op(
                    cond,
                    &[Type::Scalar(ScalarType::F32)],
                    |b| {
                        let mut inner = Pools {
                            f32s: pools.f32s.clone(),
                            i32s: pools.i32s.clone(),
                            bools: pools.bools.clone(),
                        };
                        apply_steps(b, &mut inner, then_steps);
                        vec![*inner.f32s.last().expect("pool is never empty")]
                    },
                    |b| {
                        let mut inner = Pools {
                            f32s: pools.f32s.clone(),
                            i32s: pools.i32s.clone(),
                            bools: pools.bools.clone(),
                        };
                        apply_steps(b, &mut inner, else_steps);
                        vec![*inner.f32s.last().expect("pool is never empty")]
                    },
                );
                pools.f32s.push(results[0]);
            }
        }
    }
}

/// Builds a random kernel-shaped function from the step list.
fn build_function(steps: &[Step]) -> Function {
    let mut func = Function::new("prop");
    let grid = func.add_param(Type::index());
    let mem = func.add_param(Type::MemRef(respec_ir::MemRefType::new_1d_dynamic(
        ScalarType::F32,
        MemSpace::Global,
    )));
    let mut b = FuncBuilder::new(&mut func);
    let c32 = b.const_index(32);
    b.parallel(ParLevel::Block, &[grid], |b, bids| {
        b.parallel(ParLevel::Thread, &[c32], |b, tids| {
            let base = b.mul(bids[0], c32);
            let idx = b.add(base, tids[0]);
            let seed = b.load(mem, &[idx]);
            let t = b.const_bool(true);
            let mut pools = Pools {
                f32s: vec![seed],
                i32s: vec![],
                bools: vec![t],
            };
            // Pools must be non-empty for every type before applying steps.
            let z = b.const_i32(0);
            pools.i32s.push(z);
            apply_steps(b, &mut pools, steps);
            let out = *pools.f32s.last().expect("pool is never empty");
            b.store(out, mem, &[idx]);
        });
    });
    b.ret(&[]);
    func
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_functions_verify_and_round_trip(steps in prop::collection::vec(step_strategy(3), 1..12)) {
        let func = build_function(&steps);
        verify_function(&func).expect("generated function must verify");
        let printed = func.to_string();
        let reparsed = parse_function(&printed).expect("printed function must parse");
        verify_function(&reparsed).expect("reparsed function must verify");
        prop_assert_eq!(printed, reparsed.to_string());
    }
}

/// The same fixed-point property over the committed Rodinia corpus: every
/// golden snapshot (real frontend output after the canonical pipeline, one
/// module per app) parses, verifies, and re-prints byte-identically. This
/// is the invariant the persistent tuning cache leans on when it stores
/// winners as printed IR and the structural hash keys entries by the
/// canonical text.
#[test]
fn rodinia_corpus_round_trips_byte_identically() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("tests/goldens");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/goldens exists (regenerate with RESPEC_UPDATE_GOLDENS=1)")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "the golden corpus must not be empty");
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("read golden");
        let module =
            parse_module(&src).unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
        for func in module.functions() {
            verify_function(func).unwrap_or_else(|e| panic!("{} must verify: {e}", path.display()));
        }
        let p1 = module.to_string();
        let reparsed = parse_module(&p1)
            .unwrap_or_else(|e| panic!("{} reprint must parse: {e}", path.display()));
        assert_eq!(
            p1,
            reparsed.to_string(),
            "{} print→parse→print must reach a fixed point",
            path.display()
        );
        assert_eq!(
            src,
            p1,
            "{} golden text must already be in canonical printed form",
            path.display()
        );
    }
}
