//! Structural helpers for GPU kernels.
//!
//! A *kernel* in this IR is a function whose body contains a block-level
//! [`Parallel`](crate::OpKind::Parallel) loop with a nested thread-level
//! parallel loop, mirroring Fig. 2 of the paper. This module locates that
//! structure and extracts the launch geometry and static shared-memory
//! footprint that the coarsening and pruning stages need.

use std::fmt;

use crate::ids::{OpId, RegionId, Value};
use crate::ops::{MemSpace, OpKind, ParLevel};
use crate::walk;
use crate::Function;

/// Error produced when a function does not have the expected kernel shape.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelError {
    /// Description of the structural problem.
    pub message: String,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel structure error: {}", self.message)
    }
}

impl std::error::Error for KernelError {}

/// The launch structure of one block-parallel loop.
#[derive(Clone, Debug, PartialEq)]
pub struct Launch {
    /// The block-level parallel operation.
    pub block_par: OpId,
    /// The thread-level parallel operation nested inside it.
    pub thread_par: OpId,
    /// Grid extents (one SSA `index` per block dimension).
    pub grid_ubs: Vec<Value>,
    /// Static block extents (threads per block per dimension). The paper's
    /// flow requires compile-time block sizes to size shared memory and
    /// check thread-coarsening divisibility.
    pub block_dims: Vec<i64>,
    /// `Alloc` operations in shared memory owned by this block loop.
    pub shared_allocs: Vec<OpId>,
}

impl Launch {
    /// Total threads per block.
    pub fn threads_per_block(&self) -> i64 {
        self.block_dims.iter().product()
    }

    /// Static shared memory usage of one block, in bytes.
    pub fn shared_bytes(&self, func: &Function) -> u64 {
        self.shared_allocs
            .iter()
            .map(|&a| {
                func.value_type(func.op(a).results[0])
                    .as_memref()
                    .and_then(|m| m.static_bytes())
                    .unwrap_or(0)
            })
            .sum()
    }
}

/// Finds block-parallel loops directly nested in `region` (descending into
/// sequential control flow and alternatives, but not into other parallels).
pub fn block_parallels_in(func: &Function, region: RegionId) -> Vec<OpId> {
    let mut out = Vec::new();
    collect_block_parallels(func, region, &mut out);
    out
}

fn collect_block_parallels(func: &Function, region: RegionId, out: &mut Vec<OpId>) {
    for &op in &func.region(region).ops {
        match &func.op(op).kind {
            OpKind::Parallel {
                level: ParLevel::Block,
            } => out.push(op),
            OpKind::Parallel {
                level: ParLevel::Thread,
            } => {}
            _ => {
                for &r in &func.op(op).regions {
                    collect_block_parallels(func, r, out);
                }
            }
        }
    }
}

/// Analyzes one block-parallel operation into a [`Launch`].
///
/// # Errors
///
/// Returns a [`KernelError`] if the block loop does not contain exactly one
/// thread-parallel loop, or if any thread extent is not a compile-time
/// constant.
pub fn analyze_launch(func: &Function, block_par: OpId) -> Result<Launch, KernelError> {
    let op = func.op(block_par);
    if !matches!(
        op.kind,
        OpKind::Parallel {
            level: ParLevel::Block
        }
    ) {
        return Err(KernelError {
            message: "operation is not a block-parallel loop".into(),
        });
    }
    let grid_ubs = op.operands.clone();
    let body = op.regions[0];

    let mut thread_pars = Vec::new();
    let mut shared_allocs = Vec::new();
    walk::walk_ops(func, body, &mut |o| match &func.op(o).kind {
        OpKind::Parallel {
            level: ParLevel::Thread,
        } => thread_pars.push(o),
        OpKind::Alloc {
            space: MemSpace::Shared,
        } => shared_allocs.push(o),
        _ => {}
    });
    if thread_pars.len() != 1 {
        return Err(KernelError {
            message: format!(
                "expected exactly one thread-parallel loop, found {}",
                thread_pars.len()
            ),
        });
    }
    let thread_par = thread_pars[0];
    let mut block_dims = Vec::new();
    for &ub in &func.op(thread_par).operands {
        match func.const_int_value(ub) {
            Some(v) if v > 0 => block_dims.push(v),
            _ => {
                return Err(KernelError {
                    message: "thread extents must be positive compile-time constants".into(),
                })
            }
        }
    }
    Ok(Launch {
        block_par,
        thread_par,
        grid_ubs,
        block_dims,
        shared_allocs,
    })
}

/// Analyzes all launches in the function body.
///
/// # Errors
///
/// Propagates the first [`KernelError`] from [`analyze_launch`].
pub fn analyze_function(func: &Function) -> Result<Vec<Launch>, KernelError> {
    block_parallels_in(func, func.body())
        .into_iter()
        .map(|op| analyze_launch(func, op))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_function;

    fn kernel() -> Function {
        parse_function(
            "func @k(%g: index, %m: memref<?xf32, global>) {
  %c16 = const 16 : index
  parallel<block> (%bx, %by) to (%g, %g) {
    %sm = alloc() : memref<16x16xf32, shared>
    parallel<thread> (%tx, %ty) to (%c16, %c16) {
      %v = load %sm[%tx, %ty] : f32
      store %v, %sm[%ty, %tx]
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap()
    }

    #[test]
    fn analyzes_two_dim_launch() {
        let func = kernel();
        let launches = analyze_function(&func).unwrap();
        assert_eq!(launches.len(), 1);
        let l = &launches[0];
        assert_eq!(l.block_dims, vec![16, 16]);
        assert_eq!(l.threads_per_block(), 256);
        assert_eq!(l.grid_ubs.len(), 2);
        assert_eq!(l.shared_allocs.len(), 1);
        assert_eq!(l.shared_bytes(&func), 16 * 16 * 4);
    }

    #[test]
    fn rejects_dynamic_block_dims() {
        let func = parse_function(
            "func @k(%g: index, %n: index) {
  parallel<block> (%b) to (%g) {
    parallel<thread> (%t) to (%n) {
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        let pars = block_parallels_in(&func, func.body());
        let err = analyze_launch(&func, pars[0]).unwrap_err();
        assert!(err.message.contains("compile-time constants"));
    }

    #[test]
    fn rejects_non_block_op() {
        let func = kernel();
        let body_first = func.region(func.body()).ops[0];
        assert!(analyze_launch(&func, body_first).is_err());
    }

    #[test]
    fn finds_multiple_launches() {
        let func = parse_function(
            "func @k(%g: index) {
  %c8 = const 8 : index
  parallel<block> (%b) to (%g) {
    parallel<thread> (%t) to (%c8) {
      yield
    }
    yield
  }
  parallel<block> (%b2) to (%g) {
    parallel<thread> (%t2) to (%c8) {
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        assert_eq!(analyze_function(&func).unwrap().len(), 2);
    }
}
