//! Operation kinds and the generic [`Operation`] container.

use std::fmt;

use crate::ids::{RegionId, Value};
use crate::types::ScalarType;

/// GPU address spaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Device global memory (DRAM), visible to all blocks and the host.
    Global,
    /// Per-block scratchpad ("shared memory" in CUDA, "LDS" on AMD).
    Shared,
    /// Per-thread private memory (stack-allocated local arrays).
    Local,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Local => "local",
        })
    }
}

/// The two levels of the GPU launch hierarchy a parallel loop can model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ParLevel {
    /// Grid level: one iteration per GPU block.
    Block,
    /// Block level: one iteration per GPU thread.
    Thread,
}

impl fmt::Display for ParLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ParLevel::Block => "block",
            ParLevel::Thread => "thread",
        })
    }
}

/// Binary arithmetic/logic operators. Signedness follows the operand type;
/// integer division and remainder are signed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Min,
    Max,
    Pow,
}

impl BinOp {
    /// The mnemonic used in the textual format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Pow => "pow",
        }
    }

    /// All binary operators (used by the parser and by property tests).
    pub const ALL: [BinOp; 13] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Min,
        BinOp::Max,
        BinOp::Pow,
    ];
}

/// Unary operators and math intrinsics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
    Sqrt,
    Rsqrt,
    Exp,
    Log,
    Sin,
    Cos,
    Tanh,
    Abs,
    Floor,
    Ceil,
}

impl UnOp {
    /// The mnemonic used in the textual format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Sqrt => "sqrt",
            UnOp::Rsqrt => "rsqrt",
            UnOp::Exp => "exp",
            UnOp::Log => "log",
            UnOp::Sin => "sin",
            UnOp::Cos => "cos",
            UnOp::Tanh => "tanh",
            UnOp::Abs => "abs",
            UnOp::Floor => "floor",
            UnOp::Ceil => "ceil",
        }
    }

    /// All unary operators (used by the parser and by property tests).
    pub const ALL: [UnOp; 12] = [
        UnOp::Neg,
        UnOp::Not,
        UnOp::Sqrt,
        UnOp::Rsqrt,
        UnOp::Exp,
        UnOp::Log,
        UnOp::Sin,
        UnOp::Cos,
        UnOp::Tanh,
        UnOp::Abs,
        UnOp::Floor,
        UnOp::Ceil,
    ];
}

/// Comparison predicates. Integer comparisons are signed; float comparisons
/// are ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpPred {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpPred {
    /// The mnemonic used in the textual format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
            CmpPred::Gt => "gt",
            CmpPred::Ge => "ge",
        }
    }

    /// All predicates (used by the parser and by property tests).
    pub const ALL: [CmpPred; 6] = [
        CmpPred::Eq,
        CmpPred::Ne,
        CmpPred::Lt,
        CmpPred::Le,
        CmpPred::Gt,
        CmpPred::Ge,
    ];
}

/// The kind of an [`Operation`], together with its static attributes.
///
/// Operand and region conventions (checked by
/// [`verify_function`](crate::verify_function)):
///
/// | Kind | Operands | Results | Regions |
/// |---|---|---|---|
/// | `ConstInt`/`ConstFloat` | — | 1 | — |
/// | `Binary` | lhs, rhs (same scalar type) | 1 | — |
/// | `Unary` | value | 1 | — |
/// | `Cmp` | lhs, rhs | 1 (`i1`) | — |
/// | `Select` | cond (`i1`), true, false | 1 | — |
/// | `Cast` | value | 1 | — |
/// | `Alloc` | one `index` per dynamic dim | 1 (memref) | — |
/// | `Load` | memref, indices… | 1 | — |
/// | `Store` | value, memref, indices… | — | — |
/// | `Dim` | memref | 1 (`index`) | — |
/// | `For` | lb, ub, step, inits… | one per init | body: args `[iv, iters…]`, terminator `Yield` |
/// | `While` | inits… | one per init | cond: terminator `Condition`; body: terminator `Yield` |
/// | `If` | cond (`i1`) | any | then, else; both terminated by `Yield` |
/// | `Parallel` | ubs… (1–3, `index`) | — | body: args = ivs, terminator `Yield` |
/// | `Barrier` | — | — | — |
/// | `Alternatives` | — | — | one per alternative, each `Yield`-terminated |
/// | `Call` | arguments… | callee results | — |
/// | `Yield`/`Condition`/`Return` | forwarded values | — | — |
#[derive(Clone, Debug, PartialEq)]
pub enum OpKind {
    /// Integer (or index/boolean) constant.
    ConstInt { value: i64, ty: ScalarType },
    /// Floating point constant.
    ConstFloat { value: f64, ty: ScalarType },
    /// Binary arithmetic.
    Binary(BinOp),
    /// Unary arithmetic / math intrinsic.
    Unary(UnOp),
    /// Comparison producing an `i1`.
    Cmp(CmpPred),
    /// Ternary select.
    Select,
    /// Scalar conversion.
    Cast { to: ScalarType },
    /// Buffer allocation in the given address space.
    Alloc { space: MemSpace },
    /// Indexed load from a memref.
    Load,
    /// Indexed store to a memref.
    Store,
    /// Extent of the given dimension of a memref.
    Dim { index: usize },
    /// Sequential counted loop (`scf.for`) with loop-carried values.
    For,
    /// General loop (`scf.while`) with a condition region and a body region.
    While,
    /// Two-armed conditional (`scf.if`) with optional results.
    If,
    /// GPU parallel loop over blocks or threads (`scf.parallel`); lower
    /// bounds are 0 and steps are 1, upper bounds are operands.
    Parallel { level: ParLevel },
    /// Barrier synchronizing all iterations of the enclosing parallel loop
    /// of the given level (`polygeist.barrier`).
    Barrier { level: ParLevel },
    /// Region terminator forwarding values to the parent operation.
    Yield,
    /// Terminator of a `While` condition region: first operand is the `i1`
    /// continuation condition, the rest are forwarded to the body.
    Condition,
    /// Compile-time multi-versioning (§VI): each region holds the same
    /// computation at a different granularity. `selected` is populated once
    /// a decision point has chosen a single alternative.
    Alternatives { selected: Option<usize> },
    /// Call of another function in the module.
    Call { callee: String },
    /// Function terminator.
    Return,
}

impl OpKind {
    /// Returns `true` if this kind carries nested regions.
    pub fn has_regions(&self) -> bool {
        matches!(
            self,
            OpKind::For
                | OpKind::While
                | OpKind::If
                | OpKind::Parallel { .. }
                | OpKind::Alternatives { .. }
        )
    }

    /// Returns `true` for region/function terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(self, OpKind::Yield | OpKind::Condition | OpKind::Return)
    }

    /// Returns `true` if the operation has no side effects on memory and no
    /// control-flow semantics (it may be freely duplicated, shared between
    /// unrolled instances, and removed when unused).
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            OpKind::ConstInt { .. }
                | OpKind::ConstFloat { .. }
                | OpKind::Binary(_)
                | OpKind::Unary(_)
                | OpKind::Cmp(_)
                | OpKind::Select
                | OpKind::Cast { .. }
                | OpKind::Dim { .. }
        )
    }
}

/// A generic IR operation: a kind plus operand, result and region lists.
#[derive(Clone, Debug, PartialEq)]
pub struct Operation {
    /// What the operation does.
    pub kind: OpKind,
    /// SSA operands, in kind-specific order.
    pub operands: Vec<Value>,
    /// SSA results defined by this operation.
    pub results: Vec<Value>,
    /// Nested regions, in kind-specific order.
    pub regions: Vec<RegionId>,
}

impl Operation {
    /// Creates an operation with no operands, results or regions.
    pub fn nullary(kind: OpKind) -> Operation {
        Operation {
            kind,
            operands: Vec::new(),
            results: Vec::new(),
            regions: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purity_classification() {
        assert!(OpKind::Binary(BinOp::Add).is_pure());
        assert!(OpKind::Cmp(CmpPred::Lt).is_pure());
        assert!(!OpKind::Load.is_pure());
        assert!(!OpKind::Store.is_pure());
        assert!(!OpKind::Barrier {
            level: ParLevel::Thread
        }
        .is_pure());
        assert!(!OpKind::For.is_pure());
    }

    #[test]
    fn region_classification() {
        assert!(OpKind::For.has_regions());
        assert!(OpKind::Parallel {
            level: ParLevel::Block
        }
        .has_regions());
        assert!(OpKind::Alternatives { selected: None }.has_regions());
        assert!(!OpKind::Load.has_regions());
    }

    #[test]
    fn terminator_classification() {
        assert!(OpKind::Yield.is_terminator());
        assert!(OpKind::Return.is_terminator());
        assert!(OpKind::Condition.is_terminator());
        assert!(!OpKind::Barrier {
            level: ParLevel::Thread
        }
        .is_terminator());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in BinOp::ALL {
            assert!(
                seen.insert(op.mnemonic()),
                "duplicate mnemonic {}",
                op.mnemonic()
            );
        }
        for op in UnOp::ALL {
            assert!(
                seen.insert(op.mnemonic()),
                "duplicate mnemonic {}",
                op.mnemonic()
            );
        }
    }
}
