//! Convenience builder for constructing IR with nested regions.

use crate::ids::{OpId, RegionId, Value};
use crate::ops::{BinOp, CmpPred, MemSpace, OpKind, ParLevel, UnOp};
use crate::types::{MemRefType, ScalarType, Type, DYNAMIC};
use crate::Function;

/// Builds operations into a [`Function`], maintaining a stack of insertion
/// regions so nested control flow reads like the code it produces.
///
/// # Example
///
/// ```
/// use respec_ir::{Function, FuncBuilder, ScalarType, Type};
///
/// let mut func = Function::new("sum");
/// let n = func.add_param(Type::index());
/// let mut b = FuncBuilder::new(&mut func);
/// let zero = b.const_index(0);
/// let one = b.const_index(1);
/// let init = b.const_f32(0.0);
/// let total = b.for_loop(zero, n, one, &[init], |b, _iv, iters| {
///     let next = b.add(iters[0], iters[0]);
///     vec![next]
/// });
/// b.ret(&[total[0]]);
/// ```
#[derive(Debug)]
pub struct FuncBuilder<'f> {
    func: &'f mut Function,
    insert: Vec<RegionId>,
}

impl<'f> FuncBuilder<'f> {
    /// Creates a builder inserting at the end of the function body.
    pub fn new(func: &'f mut Function) -> FuncBuilder<'f> {
        let body = func.body();
        FuncBuilder {
            func,
            insert: vec![body],
        }
    }

    /// Creates a builder inserting at the end of the given region.
    pub fn at_region(func: &'f mut Function, region: RegionId) -> FuncBuilder<'f> {
        FuncBuilder {
            func,
            insert: vec![region],
        }
    }

    /// The function being built.
    pub fn func(&self) -> &Function {
        self.func
    }

    /// Mutable access to the function being built.
    pub fn func_mut(&mut self) -> &mut Function {
        self.func
    }

    /// The current insertion region.
    pub fn current_region(&self) -> RegionId {
        *self
            .insert
            .last()
            .expect("builder region stack is never empty")
    }

    /// Creates a fresh region and makes it the insertion point. Callers that
    /// cannot use the closure-based helpers (because they carry their own
    /// mutable state) pair this with [`FuncBuilder::end_region`].
    pub fn begin_region(&mut self) -> RegionId {
        let r = self.func.new_region();
        self.insert.push(r);
        r
    }

    /// Pops the insertion point pushed by [`FuncBuilder::begin_region`].
    ///
    /// # Panics
    ///
    /// Panics if no region was begun (the function body cannot be popped).
    pub fn end_region(&mut self) {
        assert!(self.insert.len() > 1, "cannot pop the function body region");
        self.insert.pop();
    }

    /// Makes an existing region the insertion point again (e.g. to append a
    /// cast before its terminator is emitted). Pair with
    /// [`FuncBuilder::end_region`].
    pub fn resume_region(&mut self, region: RegionId) {
        self.insert.push(region);
    }

    fn scalar_ty(&self, v: Value) -> ScalarType {
        self.func
            .value_type(v)
            .as_scalar()
            .expect("operand must be a scalar value")
    }

    /// Emits an operation at the insertion point and returns its id.
    pub fn emit(
        &mut self,
        kind: OpKind,
        operands: Vec<Value>,
        result_types: Vec<Type>,
        regions: Vec<RegionId>,
    ) -> OpId {
        let op = self.func.make_op(kind, operands, result_types, regions);
        let region = self.current_region();
        self.func.push_op(region, op);
        op
    }

    fn emit1(&mut self, kind: OpKind, operands: Vec<Value>, ty: Type) -> Value {
        let op = self.emit(kind, operands, vec![ty], vec![]);
        self.func.result(op)
    }

    // ---- constants ------------------------------------------------------

    /// Emits an integer constant of the given type.
    pub fn const_int(&mut self, value: i64, ty: ScalarType) -> Value {
        debug_assert!(ty.is_int());
        self.emit1(OpKind::ConstInt { value, ty }, vec![], Type::Scalar(ty))
    }

    /// Emits an `index` constant.
    pub fn const_index(&mut self, value: i64) -> Value {
        self.const_int(value, ScalarType::Index)
    }

    /// Emits an `i32` constant.
    pub fn const_i32(&mut self, value: i32) -> Value {
        self.const_int(value as i64, ScalarType::I32)
    }

    /// Emits a boolean constant.
    pub fn const_bool(&mut self, value: bool) -> Value {
        self.const_int(value as i64, ScalarType::I1)
    }

    /// Emits a floating point constant of the given type.
    pub fn const_float(&mut self, value: f64, ty: ScalarType) -> Value {
        debug_assert!(ty.is_float());
        self.emit1(OpKind::ConstFloat { value, ty }, vec![], Type::Scalar(ty))
    }

    /// Emits an `f32` constant.
    pub fn const_f32(&mut self, value: f32) -> Value {
        self.const_float(value as f64, ScalarType::F32)
    }

    /// Emits an `f64` constant.
    pub fn const_f64(&mut self, value: f64) -> Value {
        self.const_float(value, ScalarType::F64)
    }

    // ---- arithmetic ------------------------------------------------------

    /// Emits a binary operation; the result type is the operand type.
    pub fn binary(&mut self, op: BinOp, lhs: Value, rhs: Value) -> Value {
        let ty = self.scalar_ty(lhs);
        self.emit1(OpKind::Binary(op), vec![lhs, rhs], Type::Scalar(ty))
    }

    /// Emits an addition.
    pub fn add(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::Add, lhs, rhs)
    }

    /// Emits a subtraction.
    pub fn sub(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::Sub, lhs, rhs)
    }

    /// Emits a multiplication.
    pub fn mul(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::Mul, lhs, rhs)
    }

    /// Emits a division (signed for integers).
    pub fn div(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::Div, lhs, rhs)
    }

    /// Emits a remainder (signed for integers).
    pub fn rem(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::Rem, lhs, rhs)
    }

    /// Emits a minimum.
    pub fn min(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::Min, lhs, rhs)
    }

    /// Emits a maximum.
    pub fn max(&mut self, lhs: Value, rhs: Value) -> Value {
        self.binary(BinOp::Max, lhs, rhs)
    }

    /// Emits a unary operation; the result type is the operand type.
    pub fn unary(&mut self, op: UnOp, value: Value) -> Value {
        let ty = self.scalar_ty(value);
        self.emit1(OpKind::Unary(op), vec![value], Type::Scalar(ty))
    }

    /// Emits a comparison producing an `i1`.
    pub fn cmp(&mut self, pred: CmpPred, lhs: Value, rhs: Value) -> Value {
        self.emit1(
            OpKind::Cmp(pred),
            vec![lhs, rhs],
            Type::Scalar(ScalarType::I1),
        )
    }

    /// Emits a ternary select.
    pub fn select(&mut self, cond: Value, if_true: Value, if_false: Value) -> Value {
        let ty = self.func.value_type(if_true).clone();
        self.emit1(OpKind::Select, vec![cond, if_true, if_false], ty)
    }

    /// Emits a scalar conversion.
    pub fn cast(&mut self, value: Value, to: ScalarType) -> Value {
        self.emit1(OpKind::Cast { to }, vec![value], Type::Scalar(to))
    }

    // ---- memory ----------------------------------------------------------

    /// Allocates a statically-shaped buffer.
    pub fn alloc_static(&mut self, elem: ScalarType, shape: &[i64], space: MemSpace) -> Value {
        debug_assert!(shape.iter().all(|&d| d >= 0));
        let ty = MemRefType::new(elem, shape.to_vec(), space);
        self.emit1(OpKind::Alloc { space }, vec![], Type::MemRef(ty))
    }

    /// Allocates a buffer whose dimensions are the given `index` values.
    pub fn alloc_dynamic(&mut self, elem: ScalarType, dims: &[Value], space: MemSpace) -> Value {
        let ty = MemRefType::new(elem, vec![DYNAMIC; dims.len()], space);
        self.emit1(OpKind::Alloc { space }, dims.to_vec(), Type::MemRef(ty))
    }

    /// Emits an indexed load.
    pub fn load(&mut self, mem: Value, indices: &[Value]) -> Value {
        let elem = self
            .func
            .value_type(mem)
            .as_memref()
            .expect("load target must be a memref")
            .elem;
        let mut operands = vec![mem];
        operands.extend_from_slice(indices);
        self.emit1(OpKind::Load, operands, Type::Scalar(elem))
    }

    /// Emits an indexed store.
    pub fn store(&mut self, value: Value, mem: Value, indices: &[Value]) {
        let mut operands = vec![value, mem];
        operands.extend_from_slice(indices);
        self.emit(OpKind::Store, operands, vec![], vec![]);
    }

    /// Emits a `dim` query for the extent of dimension `index`.
    pub fn dim(&mut self, mem: Value, index: usize) -> Value {
        self.emit1(OpKind::Dim { index }, vec![mem], Type::index())
    }

    // ---- control flow ----------------------------------------------------

    /// Emits a counted loop. The closure receives the induction variable and
    /// the loop-carried values and must return the values to yield; the
    /// loop's results (one per init) are returned.
    pub fn for_loop(
        &mut self,
        lb: Value,
        ub: Value,
        step: Value,
        inits: &[Value],
        body: impl FnOnce(&mut Self, Value, &[Value]) -> Vec<Value>,
    ) -> Vec<Value> {
        let region = self.func.new_region();
        let iv = self.func.add_region_arg(region, Type::index());
        let iter_args: Vec<Value> = inits
            .iter()
            .map(|&v| {
                let ty = self.func.value_type(v).clone();
                self.func.add_region_arg(region, ty)
            })
            .collect();
        self.insert.push(region);
        let yields = body(self, iv, &iter_args);
        assert_eq!(
            yields.len(),
            inits.len(),
            "for body must yield one value per init"
        );
        self.emit(OpKind::Yield, yields, vec![], vec![]);
        self.insert.pop();
        let mut operands = vec![lb, ub, step];
        operands.extend_from_slice(inits);
        let result_types = inits
            .iter()
            .map(|&v| self.func.value_type(v).clone())
            .collect();
        let op = self.emit(OpKind::For, operands, result_types, vec![region]);
        self.func.op(op).results.clone()
    }

    /// Emits a general loop. `cond` receives the carried values and returns
    /// the continuation condition plus values forwarded to the body; `body`
    /// receives the forwarded values and returns the next carried values.
    pub fn while_loop(
        &mut self,
        inits: &[Value],
        cond: impl FnOnce(&mut Self, &[Value]) -> (Value, Vec<Value>),
        body: impl FnOnce(&mut Self, &[Value]) -> Vec<Value>,
    ) -> Vec<Value> {
        let tys: Vec<Type> = inits
            .iter()
            .map(|&v| self.func.value_type(v).clone())
            .collect();

        let cond_region = self.func.new_region();
        let cond_args: Vec<Value> = tys
            .iter()
            .map(|ty| self.func.add_region_arg(cond_region, ty.clone()))
            .collect();
        self.insert.push(cond_region);
        let (c, forwarded) = cond(self, &cond_args);
        assert_eq!(
            forwarded.len(),
            inits.len(),
            "while cond must forward one value per init"
        );
        let mut cond_operands = vec![c];
        cond_operands.extend_from_slice(&forwarded);
        self.emit(OpKind::Condition, cond_operands, vec![], vec![]);
        self.insert.pop();

        let body_region = self.func.new_region();
        let body_args: Vec<Value> = tys
            .iter()
            .map(|ty| self.func.add_region_arg(body_region, ty.clone()))
            .collect();
        self.insert.push(body_region);
        let yields = body(self, &body_args);
        assert_eq!(
            yields.len(),
            inits.len(),
            "while body must yield one value per init"
        );
        self.emit(OpKind::Yield, yields, vec![], vec![]);
        self.insert.pop();

        let op = self.emit(
            OpKind::While,
            inits.to_vec(),
            tys,
            vec![cond_region, body_region],
        );
        self.func.op(op).results.clone()
    }

    /// Emits a two-armed conditional with results. Both closures must yield
    /// values matching `result_types`.
    pub fn if_op(
        &mut self,
        cond: Value,
        result_types: &[Type],
        then: impl FnOnce(&mut Self) -> Vec<Value>,
        els: impl FnOnce(&mut Self) -> Vec<Value>,
    ) -> Vec<Value> {
        let then_region = self.func.new_region();
        self.insert.push(then_region);
        let then_yields = then(self);
        assert_eq!(then_yields.len(), result_types.len());
        self.emit(OpKind::Yield, then_yields, vec![], vec![]);
        self.insert.pop();

        let else_region = self.func.new_region();
        self.insert.push(else_region);
        let else_yields = els(self);
        assert_eq!(else_yields.len(), result_types.len());
        self.emit(OpKind::Yield, else_yields, vec![], vec![]);
        self.insert.pop();

        let op = self.emit(
            OpKind::If,
            vec![cond],
            result_types.to_vec(),
            vec![then_region, else_region],
        );
        self.func.op(op).results.clone()
    }

    /// Emits a result-less conditional with only a then branch.
    pub fn if_then(&mut self, cond: Value, then: impl FnOnce(&mut Self)) {
        self.if_op(
            cond,
            &[],
            |b| {
                then(b);
                vec![]
            },
            |_| vec![],
        );
    }

    /// Emits a GPU parallel loop over `ubs` (1–3 dimensions, lower bounds 0,
    /// steps 1). The closure receives the induction variables.
    pub fn parallel(
        &mut self,
        level: ParLevel,
        ubs: &[Value],
        body: impl FnOnce(&mut Self, &[Value]),
    ) -> OpId {
        assert!(
            (1..=3).contains(&ubs.len()),
            "parallel loops have 1-3 dimensions"
        );
        let region = self.func.new_region();
        let ivs: Vec<Value> = (0..ubs.len())
            .map(|_| self.func.add_region_arg(region, Type::index()))
            .collect();
        self.insert.push(region);
        body(self, &ivs);
        self.emit(OpKind::Yield, vec![], vec![], vec![]);
        self.insert.pop();
        self.emit(
            OpKind::Parallel { level },
            ubs.to_vec(),
            vec![],
            vec![region],
        )
    }

    /// Emits a barrier synchronizing the enclosing parallel loop of `level`.
    pub fn barrier(&mut self, level: ParLevel) {
        self.emit(OpKind::Barrier { level }, vec![], vec![], vec![]);
    }

    /// Emits a call to another function of the module.
    pub fn call(
        &mut self,
        callee: impl Into<String>,
        args: &[Value],
        result_types: &[Type],
    ) -> Vec<Value> {
        let op = self.emit(
            OpKind::Call {
                callee: callee.into(),
            },
            args.to_vec(),
            result_types.to_vec(),
            vec![],
        );
        self.func.op(op).results.clone()
    }

    /// Emits the function terminator.
    pub fn ret(&mut self, values: &[Value]) {
        self.emit(OpKind::Return, values.to_vec(), vec![], vec![]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_loop() {
        let mut func = Function::new("f");
        let n = func.add_param(Type::index());
        let mut b = FuncBuilder::new(&mut func);
        let zero = b.const_index(0);
        let one = b.const_index(1);
        let acc0 = b.const_f32(0.0);
        let r = b.for_loop(zero, n, one, &[acc0], |b, iv, iters| {
            let f = b.cast(iv, ScalarType::F32);
            let next = b.add(iters[0], f);
            vec![next]
        });
        b.ret(&[r[0]]);
        assert_eq!(func.region(func.body()).ops.len(), 5);
        crate::verify_function(&func).unwrap();
    }

    #[test]
    fn builds_if_and_select() {
        let mut func = Function::new("f");
        let x = func.add_param(Type::Scalar(ScalarType::F32));
        let mut b = FuncBuilder::new(&mut func);
        let zero = b.const_f32(0.0);
        let c = b.cmp(CmpPred::Lt, x, zero);
        let r = b.if_op(
            c,
            &[Type::Scalar(ScalarType::F32)],
            |b| vec![b.unary(UnOp::Neg, x)],
            |_| vec![x],
        );
        let s = b.select(c, r[0], x);
        b.ret(&[s]);
        crate::verify_function(&func).unwrap();
    }

    #[test]
    fn builds_while() {
        let mut func = Function::new("f");
        let n = func.add_param(Type::Scalar(ScalarType::I32));
        let mut b = FuncBuilder::new(&mut func);
        let zero = b.const_i32(0);
        let r = b.while_loop(
            &[zero],
            |b, args| {
                let c = b.cmp(CmpPred::Lt, args[0], n);
                (c, vec![args[0]])
            },
            |b, args| {
                let one = b.const_i32(1);
                vec![b.add(args[0], one)]
            },
        );
        b.ret(&[r[0]]);
        crate::verify_function(&func).unwrap();
    }

    #[test]
    fn builds_kernel_shape() {
        let mut func = Function::new("k");
        let grid = func.add_param(Type::index());
        let mut b = FuncBuilder::new(&mut func);
        let c32 = b.const_index(32);
        b.parallel(ParLevel::Block, &[grid], |b, _bids| {
            let sm = b.alloc_static(ScalarType::F32, &[32], MemSpace::Shared);
            b.parallel(ParLevel::Thread, &[c32], |b, tids| {
                let v = b.load(sm, &[tids[0]]);
                b.barrier(ParLevel::Thread);
                b.store(v, sm, &[tids[0]]);
            });
        });
        b.ret(&[]);
        crate::verify_function(&func).unwrap();
    }

    #[test]
    #[should_panic(expected = "parallel loops have 1-3 dimensions")]
    fn rejects_4d_parallel() {
        let mut func = Function::new("k");
        let mut b = FuncBuilder::new(&mut func);
        let c = b.const_index(4);
        b.parallel(ParLevel::Block, &[c, c, c, c], |_, _| {});
    }
}
