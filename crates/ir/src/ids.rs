//! Lightweight arena identifiers.
//!
//! All IR entities live in per-[`Function`](crate::Function) arenas and are
//! referred to by copyable `u32` indices. This makes cloning kernels for
//! [`Alternatives`](crate::OpKind::Alternatives) regions and remapping values
//! during unroll-and-interleave cheap and allocation-free.

use std::fmt;

/// An SSA value: a function parameter, a region argument (e.g. a loop
/// induction variable) or an operation result.
///
/// Values are scoped to the [`Function`](crate::Function) that created them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value(u32);

/// Identifier of an [`Operation`](crate::Operation) within its function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(u32);

/// Identifier of a [`Region`](crate::Region) within its function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(u32);

macro_rules! impl_id {
    ($name:ident, $prefix:literal) => {
        impl $name {
            /// Creates an identifier from a raw arena index.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("arena index overflow"))
            }

            /// Returns the raw arena index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

impl_id!(Value, "%");
impl_id!(OpId, "op");
impl_id!(RegionId, "region");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_indices() {
        let v = Value::from_index(42);
        assert_eq!(v.index(), 42);
        let o = OpId::from_index(7);
        assert_eq!(o.index(), 7);
        let r = RegionId::from_index(0);
        assert_eq!(r.index(), 0);
    }

    #[test]
    fn debug_is_nonempty_and_distinct() {
        assert_eq!(format!("{:?}", Value::from_index(3)), "%3");
        assert_eq!(format!("{:?}", OpId::from_index(3)), "op3");
        assert_eq!(format!("{:?}", RegionId::from_index(3)), "region3");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(Value::from_index(1) < Value::from_index(2));
    }
}
