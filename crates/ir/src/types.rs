//! The IR type system: scalar types and multi-dimensional memory references.

use std::fmt;

use crate::ops::MemSpace;

/// A scalar SSA value type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// 1-bit boolean (comparison results, conditions).
    I1,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
    /// Platform index type used for loop bounds, thread/block ids and memory
    /// indexing. Modelled as 64-bit.
    Index,
}

impl ScalarType {
    /// Returns `true` for the floating point types.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }

    /// Returns `true` for the integer types (including [`ScalarType::Index`]
    /// and [`ScalarType::I1`]).
    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// Size of one element of this type in bytes, as laid out in GPU memory.
    pub fn size_bytes(self) -> u64 {
        match self {
            ScalarType::I1 => 1,
            ScalarType::I32 | ScalarType::F32 => 4,
            ScalarType::I64 | ScalarType::F64 | ScalarType::Index => 8,
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::I1 => "i1",
            ScalarType::I32 => "i32",
            ScalarType::I64 => "i64",
            ScalarType::F32 => "f32",
            ScalarType::F64 => "f64",
            ScalarType::Index => "index",
        };
        f.write_str(s)
    }
}

/// Shape dimension marker for a dynamically-sized dimension.
pub const DYNAMIC: i64 = -1;

/// A multi-dimensional memory buffer type with an address space.
///
/// Shapes use row-major contiguous layout; a dimension of [`DYNAMIC`] is
/// unknown at compile time (its extent is an SSA operand of the allocation,
/// or implicit for function parameters).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemRefType {
    /// Element type.
    pub elem: ScalarType,
    /// Extent of each dimension; [`DYNAMIC`] for unknown extents.
    pub shape: Vec<i64>,
    /// GPU address space the buffer lives in.
    pub space: MemSpace,
}

impl MemRefType {
    /// Creates a memref type with the given shape.
    pub fn new(elem: ScalarType, shape: Vec<i64>, space: MemSpace) -> Self {
        MemRefType { elem, shape, space }
    }

    /// Convenience constructor for a 1-D buffer with dynamic extent.
    pub fn new_1d_dynamic(elem: ScalarType, space: MemSpace) -> Self {
        MemRefType::new(elem, vec![DYNAMIC], space)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Returns `true` if every dimension extent is known at compile time.
    pub fn is_static(&self) -> bool {
        self.shape.iter().all(|&d| d != DYNAMIC)
    }

    /// Total static size in elements, or `None` if any dimension is dynamic.
    pub fn static_elements(&self) -> Option<u64> {
        let mut n: u64 = 1;
        for &d in &self.shape {
            if d == DYNAMIC {
                return None;
            }
            n = n.checked_mul(d as u64)?;
        }
        Some(n)
    }

    /// Total static size in bytes, or `None` if any dimension is dynamic.
    pub fn static_bytes(&self) -> Option<u64> {
        Some(self.static_elements()? * self.elem.size_bytes())
    }
}

impl fmt::Display for MemRefType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memref<")?;
        for &d in &self.shape {
            if d == DYNAMIC {
                write!(f, "?x")?;
            } else {
                write!(f, "{d}x")?;
            }
        }
        write!(f, "{}, {}>", self.elem, self.space)
    }
}

/// The type of an SSA value.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// A scalar value.
    Scalar(ScalarType),
    /// A reference to a memory buffer.
    MemRef(MemRefType),
}

impl Type {
    /// Shorthand for `Type::Scalar(ScalarType::Index)`.
    pub fn index() -> Type {
        Type::Scalar(ScalarType::Index)
    }

    /// Returns the scalar type, or `None` for memrefs.
    pub fn as_scalar(&self) -> Option<ScalarType> {
        match self {
            Type::Scalar(s) => Some(*s),
            Type::MemRef(_) => None,
        }
    }

    /// Returns the memref type, or `None` for scalars.
    pub fn as_memref(&self) -> Option<&MemRefType> {
        match self {
            Type::Scalar(_) => None,
            Type::MemRef(m) => Some(m),
        }
    }
}

impl From<ScalarType> for Type {
    fn from(s: ScalarType) -> Type {
        Type::Scalar(s)
    }
}

impl From<MemRefType> for Type {
    fn from(m: MemRefType) -> Type {
        Type::MemRef(m)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(s) => s.fmt(f),
            Type::MemRef(m) => m.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(ScalarType::F32.size_bytes(), 4);
        assert_eq!(ScalarType::F64.size_bytes(), 8);
        assert_eq!(ScalarType::Index.size_bytes(), 8);
        assert_eq!(ScalarType::I1.size_bytes(), 1);
    }

    #[test]
    fn scalar_classification() {
        assert!(ScalarType::F32.is_float());
        assert!(!ScalarType::F32.is_int());
        assert!(ScalarType::Index.is_int());
        assert!(ScalarType::I1.is_int());
    }

    #[test]
    fn memref_static_bytes() {
        let m = MemRefType::new(ScalarType::F32, vec![16, 16], MemSpace::Shared);
        assert!(m.is_static());
        assert_eq!(m.static_elements(), Some(256));
        assert_eq!(m.static_bytes(), Some(1024));
    }

    #[test]
    fn memref_dynamic_bytes() {
        let m = MemRefType::new_1d_dynamic(ScalarType::F64, MemSpace::Global);
        assert!(!m.is_static());
        assert_eq!(m.static_bytes(), None);
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn display_formats() {
        let m = MemRefType::new(ScalarType::F32, vec![DYNAMIC, 8], MemSpace::Global);
        assert_eq!(m.to_string(), "memref<?x8xf32, global>");
        assert_eq!(Type::index().to_string(), "index");
    }
}
