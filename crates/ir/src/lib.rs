//! Arena-based SSA intermediate representation for the `respec` GPU
//! retargeting compiler.
//!
//! This crate is the MLIR substitute the rest of the system is built on. It
//! models the subset of MLIR that the CGO 2024 paper *"Retargeting and
//! Respecializing GPU Workloads for Performance Portability"* transforms:
//!
//! * structured control flow (`for`, `while`, `if`) — the `scf` dialect,
//! * integer/floating point arithmetic and math intrinsics — `arith`/`math`,
//! * memory allocation, loads and stores on multi-dimensional buffers in
//!   distinct address spaces — `memref`,
//! * **parallel loops** at the GPU *block* and *thread* level together with
//!   **scoped barriers** — the `scf.parallel` + `polygeist.barrier`
//!   representation of Fig. 2 in the paper,
//! * the multi-region [`OpKind::Alternatives`] operation used for
//!   compile-time multi-versioning (§VI of the paper).
//!
//! The representation is *structured*: there are no basic blocks or branch
//! operations, only region-carrying operations. One iteration of a parallel
//! loop corresponds to one GPU block or thread of the launched kernel; the
//! operation itself does not prescribe concurrent execution, only
//! independence.
//!
//! # Example
//!
//! Build and print the paper's running example (a kernel that stages global
//! memory through shared memory around a barrier):
//!
//! ```
//! use respec_ir::{Function, FuncBuilder, ScalarType, MemRefType, MemSpace, ParLevel, Type};
//!
//! let mut func = Function::new("kernel");
//! let grid = func.add_param(Type::Scalar(ScalarType::Index));
//! let mem = func.add_param(Type::MemRef(MemRefType::new_1d_dynamic(ScalarType::F32, MemSpace::Global)));
//! let mut b = FuncBuilder::new(&mut func);
//! let c32 = b.const_index(32);
//! b.parallel(ParLevel::Block, &[grid], |b, bids| {
//!     let shared = b.alloc_static(ScalarType::F32, &[32], MemSpace::Shared);
//!     b.parallel(ParLevel::Thread, &[c32], |b, tids| {
//!         let g = b.mul(bids[0], c32);
//!         let idx = b.add(g, tids[0]);
//!         let v = b.load(mem, &[idx]);
//!         b.store(v, shared, &[tids[0]]);
//!         b.barrier(ParLevel::Thread);
//!     });
//! });
//! b.ret(&[]);
//! let text = func.to_string();
//! assert!(text.contains("parallel<thread>"));
//! assert!(text.contains("barrier<thread>"));
//! ```

mod builder;
pub mod diag;
mod func;
mod hash;
mod ids;
pub mod kernel;
mod ops;
mod parse;
mod print;
mod types;
mod verify;
pub mod walk;

pub use builder::FuncBuilder;
pub use diag::{Diagnostic, Severity};
pub use func::{Function, Module, Region};
pub use hash::{structural_hash, StableHasher, STRUCTURAL_HASH_VERSION};
pub use ids::{OpId, RegionId, Value};
pub use ops::{BinOp, CmpPred, MemSpace, OpKind, Operation, ParLevel, UnOp};
pub use parse::{parse_function, parse_module, ParseError};
pub use types::{MemRefType, ScalarType, Type};
pub use verify::{verify_function, verify_module, VerifyError};

// The autotuner evaluates candidate kernel versions on worker threads; the
// arena IR must stay plain (`Send + Sync`) data. Compile-time check so a
// future `Rc`/`RefCell` sneaking in fails here, not at a distant use site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Function>();
    assert_send_sync::<Module>();
    assert_send_sync::<Region>();
    assert_send_sync::<Operation>();
};
