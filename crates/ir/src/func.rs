//! Functions, regions and the module container.

use std::collections::HashMap;
use std::fmt;

use crate::ids::{OpId, RegionId, Value};
use crate::ops::{OpKind, Operation};
use crate::types::Type;

/// A single-block region: an argument list plus an ordered list of
/// operations, the last of which is a terminator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Region {
    /// Values defined by the region itself (loop induction variables,
    /// iteration arguments, function parameters).
    pub args: Vec<Value>,
    /// Operations in execution order.
    pub ops: Vec<OpId>,
}

/// A function: a name, a body region, and the arenas owning every value,
/// operation and region of the function.
///
/// GPU kernels are ordinary functions whose body contains a
/// [`Parallel`](OpKind::Parallel) loop at [`ParLevel::Block`]
/// level; see the [`kernel`](crate::kernel) module for structural helpers.
///
/// Cloning a `Function` deep-copies all arenas, which is how per-target and
/// per-alternative variants are produced.
///
/// [`ParLevel::Block`]: crate::ParLevel::Block
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    name: String,
    body: RegionId,
    value_types: Vec<Type>,
    ops: Vec<Operation>,
    regions: Vec<Region>,
}

impl Function {
    /// Creates an empty function with the given name and no parameters.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            body: RegionId::from_index(0),
            value_types: Vec::new(),
            ops: Vec::new(),
            regions: vec![Region::default()],
        }
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the function.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The body region.
    pub fn body(&self) -> RegionId {
        self.body
    }

    /// Function parameters (the body region's arguments).
    pub fn params(&self) -> &[Value] {
        &self.regions[self.body.index()].args
    }

    /// Appends a parameter of the given type and returns its value.
    pub fn add_param(&mut self, ty: Type) -> Value {
        let v = self.new_value(ty);
        let body = self.body;
        self.region_mut(body).args.push(v);
        v
    }

    /// Creates a fresh SSA value of the given type.
    pub fn new_value(&mut self, ty: Type) -> Value {
        let v = Value::from_index(self.value_types.len());
        self.value_types.push(ty);
        v
    }

    /// The type of a value.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this function.
    pub fn value_type(&self, v: Value) -> &Type {
        &self.value_types[v.index()]
    }

    /// Replaces the type of a value. This is a low-level escape hatch for
    /// passes that change a buffer's address space (e.g. shared-memory
    /// offloading); callers must re-verify the function afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this function.
    pub fn replace_value_type(&mut self, v: Value, ty: Type) {
        self.value_types[v.index()] = ty;
    }

    /// Number of values created so far (dense id space upper bound).
    pub fn num_values(&self) -> usize {
        self.value_types.len()
    }

    /// Number of operations in the arena (including detached ones).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of regions in the arena (including detached ones).
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Accesses an operation.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// Mutably accesses an operation.
    pub fn op_mut(&mut self, id: OpId) -> &mut Operation {
        &mut self.ops[id.index()]
    }

    /// Accesses a region.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Mutably accesses a region.
    pub fn region_mut(&mut self, id: RegionId) -> &mut Region {
        &mut self.regions[id.index()]
    }

    /// Creates a new empty region (not yet attached to any operation).
    pub fn new_region(&mut self) -> RegionId {
        let id = RegionId::from_index(self.regions.len());
        self.regions.push(Region::default());
        id
    }

    /// Adds an argument of the given type to a region and returns its value.
    pub fn add_region_arg(&mut self, region: RegionId, ty: Type) -> Value {
        let v = self.new_value(ty);
        self.region_mut(region).args.push(v);
        v
    }

    /// Creates an operation in the arena, materializing fresh result values
    /// of the given types, and returns its id. The operation is *not*
    /// inserted into any region; use [`Function::push_op`] or a
    /// [`FuncBuilder`](crate::FuncBuilder).
    pub fn make_op(
        &mut self,
        kind: OpKind,
        operands: Vec<Value>,
        result_types: Vec<Type>,
        regions: Vec<RegionId>,
    ) -> OpId {
        let results = result_types
            .into_iter()
            .map(|ty| self.new_value(ty))
            .collect();
        let id = OpId::from_index(self.ops.len());
        self.ops.push(Operation {
            kind,
            operands,
            results,
            regions,
        });
        id
    }

    /// Appends an existing operation to the end of a region.
    pub fn push_op(&mut self, region: RegionId, op: OpId) {
        self.region_mut(region).ops.push(op);
    }

    /// Single result of an operation.
    ///
    /// # Panics
    ///
    /// Panics if the operation does not have exactly one result.
    pub fn result(&self, op: OpId) -> Value {
        let results = &self.op(op).results;
        assert_eq!(
            results.len(),
            1,
            "operation has {} results, expected 1",
            results.len()
        );
        results[0]
    }

    /// Returns the constant integer value of `v` if it is defined by a
    /// `ConstInt` operation reachable in the body, else `None`.
    ///
    /// This performs a linear scan over the arena; transforms that need many
    /// queries should build their own def map via [`walk`](crate::walk).
    pub fn const_int_value(&self, v: Value) -> Option<i64> {
        for op in &self.ops {
            if let OpKind::ConstInt { value, .. } = op.kind {
                if op.results.first() == Some(&v) {
                    return Some(value);
                }
            }
        }
        None
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::print::print_function(self, f)
    }
}

/// A compilation module: an ordered collection of functions with unique
/// names. Host launch logic and device kernels share one module, mirroring
/// the paper's single-translation-unit design (§III).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    funcs: Vec<Function>,
    by_name: HashMap<String, usize>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Adds a function, replacing any previous function of the same name.
    pub fn add_function(&mut self, func: Function) {
        if let Some(&i) = self.by_name.get(func.name()) {
            self.funcs[i] = func;
        } else {
            self.by_name
                .insert(func.name().to_string(), self.funcs.len());
            self.funcs.push(func);
        }
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.by_name.get(name).map(|&i| &self.funcs[i])
    }

    /// Mutably looks up a function by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        match self.by_name.get(name) {
            Some(&i) => Some(&mut self.funcs[i]),
            None => None,
        }
    }

    /// Iterates over all functions in insertion order.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.funcs.iter()
    }

    /// Iterates mutably over all functions.
    pub fn functions_mut(&mut self) -> impl Iterator<Item = &mut Function> {
        self.funcs.iter_mut()
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Returns `true` if the module holds no functions.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, func) in self.funcs.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            func.fmt(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ScalarType;

    #[test]
    fn new_function_has_empty_body() {
        let func = Function::new("f");
        assert_eq!(func.name(), "f");
        assert!(func.params().is_empty());
        assert!(func.region(func.body()).ops.is_empty());
    }

    #[test]
    fn params_are_body_args() {
        let mut func = Function::new("f");
        let p = func.add_param(Type::index());
        assert_eq!(func.params(), &[p]);
        assert_eq!(func.value_type(p), &Type::index());
    }

    #[test]
    fn make_op_creates_results() {
        let mut func = Function::new("f");
        let op = func.make_op(
            OpKind::ConstInt {
                value: 3,
                ty: ScalarType::I32,
            },
            vec![],
            vec![Type::Scalar(ScalarType::I32)],
            vec![],
        );
        assert_eq!(func.op(op).results.len(), 1);
        let r = func.result(op);
        assert_eq!(func.const_int_value(r), Some(3));
    }

    #[test]
    fn module_replaces_same_name() {
        let mut m = Module::new();
        m.add_function(Function::new("k"));
        let mut k2 = Function::new("k");
        k2.add_param(Type::index());
        m.add_function(k2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.function("k").unwrap().params().len(), 1);
        assert!(!m.is_empty());
        assert!(m.function("missing").is_none());
    }
}
