//! Structural and type verification of functions and modules.

use std::collections::HashSet;
use std::fmt;

use crate::ids::{RegionId, Value};
use crate::ops::{OpKind, ParLevel};
use crate::types::{ScalarType, Type, DYNAMIC};
use crate::{Function, Module};

/// Error produced when IR verification fails.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyError {
    /// Function in which the problem was found.
    pub function: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verification of @{} failed: {}",
            self.function, self.message
        )
    }
}

impl std::error::Error for VerifyError {}

struct Verifier<'f> {
    func: &'f Function,
    defined: Vec<HashSet<Value>>,
    parallel_stack: Vec<ParLevel>,
}

/// What terminator a region must end with, and what it must carry.
enum RegionRole<'a> {
    FuncBody,
    Yield(&'a [Type]),
    Condition(&'a [Type]),
    EmptyYield,
}

impl<'f> Verifier<'f> {
    fn err(&self, message: impl Into<String>) -> VerifyError {
        VerifyError {
            function: self.func.name().to_string(),
            message: message.into(),
        }
    }

    fn is_defined(&self, v: Value) -> bool {
        self.defined.iter().any(|s| s.contains(&v))
    }

    fn scalar(&self, v: Value) -> Result<ScalarType, VerifyError> {
        self.func
            .value_type(v)
            .as_scalar()
            .ok_or_else(|| self.err(format!("{v:?} must be a scalar")))
    }

    fn expect_index(&self, v: Value, what: &str) -> Result<(), VerifyError> {
        if self.scalar(v)? == ScalarType::Index {
            Ok(())
        } else {
            Err(self.err(format!(
                "{what} must have index type, got {}",
                self.func.value_type(v)
            )))
        }
    }

    fn check_region(&mut self, region: RegionId, role: RegionRole<'_>) -> Result<(), VerifyError> {
        let r = self.func.region(region);
        let mut scope = HashSet::new();
        for &a in &r.args {
            scope.insert(a);
        }
        self.defined.push(scope);
        let ops = r.ops.clone();
        if ops.is_empty() {
            return Err(self.err("region has no terminator"));
        }
        for (i, &op) in ops.iter().enumerate() {
            let operation = self.func.op(op);
            let is_last = i + 1 == ops.len();
            if operation.kind.is_terminator() != is_last {
                return Err(self.err(format!(
                    "terminator misplacement: {:?} at position {i} of region with {} ops",
                    operation.kind,
                    ops.len()
                )));
            }
            for &operand in &operation.operands {
                if !self.is_defined(operand) {
                    return Err(self.err(format!("{operand:?} used before definition")));
                }
            }
            self.check_op(op)?;
            let results = self.func.op(op).results.clone();
            let scope = self.defined.last_mut().expect("scope stack is never empty");
            for v in results {
                scope.insert(v);
            }
        }
        // Terminator compatibility with the parent op.
        let term = *ops.last().expect("region checked non-empty above");
        let term_op = self.func.op(term);
        let check_types = |expected: &[Type], what: &str| -> Result<(), VerifyError> {
            if term_op.operands.len() != expected.len() {
                return Err(self.err(format!(
                    "{what} carries {} values, parent expects {}",
                    term_op.operands.len(),
                    expected.len()
                )));
            }
            for (v, ty) in term_op.operands.iter().zip(expected) {
                if self.func.value_type(*v) != ty {
                    return Err(self.err(format!(
                        "{what} value {v:?} has type {}, parent expects {ty}",
                        self.func.value_type(*v)
                    )));
                }
            }
            Ok(())
        };
        match role {
            RegionRole::FuncBody => {
                if !matches!(term_op.kind, OpKind::Return) {
                    return Err(self.err("function body must end with return"));
                }
            }
            RegionRole::Yield(expected) => {
                if !matches!(term_op.kind, OpKind::Yield) {
                    return Err(self.err("region must end with yield"));
                }
                check_types(expected, "yield")?;
            }
            RegionRole::Condition(forwarded) => {
                if !matches!(term_op.kind, OpKind::Condition) {
                    return Err(self.err("while condition region must end with condition"));
                }
                if term_op.operands.is_empty() {
                    return Err(self.err("condition needs an i1 operand"));
                }
                if self.scalar(term_op.operands[0])? != ScalarType::I1 {
                    return Err(self.err("condition flag must be i1"));
                }
                let rest: Vec<Value> = term_op.operands[1..].to_vec();
                if rest.len() != forwarded.len() {
                    return Err(self.err("condition forwards wrong number of values"));
                }
                for (v, ty) in rest.iter().zip(forwarded) {
                    if self.func.value_type(*v) != ty {
                        return Err(self.err("condition forwarded value type mismatch"));
                    }
                }
            }
            RegionRole::EmptyYield => {
                if !matches!(term_op.kind, OpKind::Yield) || !term_op.operands.is_empty() {
                    return Err(self.err("region must end with a value-less yield"));
                }
            }
        }
        self.defined.pop();
        Ok(())
    }

    fn check_op(&mut self, op: crate::OpId) -> Result<(), VerifyError> {
        let operation = self.func.op(op).clone();
        let n_operands = operation.operands.len();
        let n_results = operation.results.len();
        let n_regions = operation.regions.len();
        let expect = |cond: bool, msg: &str| -> Result<(), VerifyError> {
            if cond {
                Ok(())
            } else {
                Err(self.err(format!("{:?}: {msg}", operation.kind)))
            }
        };
        match &operation.kind {
            OpKind::ConstInt { ty, .. } => {
                expect(
                    n_operands == 0 && n_results == 1 && n_regions == 0,
                    "malformed const",
                )?;
                expect(ty.is_int(), "const requires an integer type")?;
            }
            OpKind::ConstFloat { ty, .. } => {
                expect(
                    n_operands == 0 && n_results == 1 && n_regions == 0,
                    "malformed fconst",
                )?;
                expect(ty.is_float(), "fconst requires a float type")?;
            }
            OpKind::Binary(_) => {
                expect(
                    n_operands == 2 && n_results == 1 && n_regions == 0,
                    "malformed binary op",
                )?;
                let l = self.scalar(operation.operands[0])?;
                let r = self.scalar(operation.operands[1])?;
                expect(l == r, "binary operand types differ")?;
                let res = self.scalar(operation.results[0])?;
                expect(res == l, "binary result type differs from operands")?;
            }
            OpKind::Unary(_) => {
                expect(
                    n_operands == 1 && n_results == 1 && n_regions == 0,
                    "malformed unary op",
                )?;
                let v = self.scalar(operation.operands[0])?;
                let res = self.scalar(operation.results[0])?;
                expect(res == v, "unary result type differs from operand")?;
            }
            OpKind::Cmp(_) => {
                expect(
                    n_operands == 2 && n_results == 1 && n_regions == 0,
                    "malformed cmp",
                )?;
                let l = self.scalar(operation.operands[0])?;
                let r = self.scalar(operation.operands[1])?;
                expect(l == r, "cmp operand types differ")?;
                expect(
                    self.scalar(operation.results[0])? == ScalarType::I1,
                    "cmp must produce i1",
                )?;
            }
            OpKind::Select => {
                expect(
                    n_operands == 3 && n_results == 1 && n_regions == 0,
                    "malformed select",
                )?;
                expect(
                    self.scalar(operation.operands[0])? == ScalarType::I1,
                    "select condition must be i1",
                )?;
                let t = self.func.value_type(operation.operands[1]);
                let e = self.func.value_type(operation.operands[2]);
                expect(t == e, "select arms must have equal types")?;
                expect(
                    self.func.value_type(operation.results[0]) == t,
                    "select result type mismatch",
                )?;
            }
            OpKind::Cast { to } => {
                expect(
                    n_operands == 1 && n_results == 1 && n_regions == 0,
                    "malformed cast",
                )?;
                expect(
                    self.scalar(operation.results[0])? == *to,
                    "cast result type mismatch",
                )?;
            }
            OpKind::Alloc { space } => {
                expect(n_results == 1 && n_regions == 0, "malformed alloc")?;
                let m = self
                    .func
                    .value_type(operation.results[0])
                    .as_memref()
                    .ok_or_else(|| self.err("alloc must produce a memref"))?;
                expect(
                    m.space == *space,
                    "alloc space attribute disagrees with result type",
                )?;
                let dynamic = m.shape.iter().filter(|&&d| d == DYNAMIC).count();
                expect(
                    n_operands == dynamic,
                    "alloc needs one operand per dynamic dimension",
                )?;
                for &d in &operation.operands {
                    self.expect_index(d, "alloc dimension")?;
                }
                if *space == crate::MemSpace::Shared {
                    expect(m.is_static(), "shared allocations must have static shape")?;
                }
            }
            OpKind::Load => {
                expect(
                    n_results == 1 && n_regions == 0 && n_operands >= 1,
                    "malformed load",
                )?;
                let m = self
                    .func
                    .value_type(operation.operands[0])
                    .as_memref()
                    .ok_or_else(|| self.err("load target must be a memref"))?;
                expect(
                    n_operands == 1 + m.rank(),
                    "load index count must equal memref rank",
                )?;
                for &i in &operation.operands[1..] {
                    self.expect_index(i, "load index")?;
                }
                expect(
                    self.scalar(operation.results[0])? == m.elem,
                    "load result type must be the memref element type",
                )?;
            }
            OpKind::Store => {
                expect(
                    n_results == 0 && n_regions == 0 && n_operands >= 2,
                    "malformed store",
                )?;
                let m = self
                    .func
                    .value_type(operation.operands[1])
                    .as_memref()
                    .ok_or_else(|| self.err("store target must be a memref"))?;
                expect(
                    n_operands == 2 + m.rank(),
                    "store index count must equal memref rank",
                )?;
                expect(
                    self.scalar(operation.operands[0])? == m.elem,
                    "stored value type must be the memref element type",
                )?;
                for &i in &operation.operands[2..] {
                    self.expect_index(i, "store index")?;
                }
            }
            OpKind::Dim { index } => {
                expect(
                    n_operands == 1 && n_results == 1 && n_regions == 0,
                    "malformed dim",
                )?;
                let m = self
                    .func
                    .value_type(operation.operands[0])
                    .as_memref()
                    .ok_or_else(|| self.err("dim operand must be a memref"))?;
                expect(*index < m.rank(), "dim index out of range")?;
                self.expect_index(operation.results[0], "dim result")?;
            }
            OpKind::For => {
                expect(n_regions == 1, "for needs exactly one region")?;
                expect(n_operands >= 3, "for needs lb, ub, step")?;
                for &v in &operation.operands[..3] {
                    self.expect_index(v, "for bound")?;
                }
                let inits = &operation.operands[3..];
                expect(
                    inits.len() == n_results,
                    "for needs one result per iter arg",
                )?;
                let body = self.func.region(operation.regions[0]);
                expect(
                    body.args.len() == 1 + inits.len(),
                    "for region needs iv + iter args",
                )?;
                let result_types: Vec<Type> = operation
                    .results
                    .iter()
                    .map(|&v| self.func.value_type(v).clone())
                    .collect();
                self.check_region(operation.regions[0], RegionRole::Yield(&result_types))?;
            }
            OpKind::While => {
                expect(n_regions == 2, "while needs cond and body regions")?;
                expect(n_operands == n_results, "while needs one result per init")?;
                let tys: Vec<Type> = operation
                    .results
                    .iter()
                    .map(|&v| self.func.value_type(v).clone())
                    .collect();
                self.check_region(operation.regions[0], RegionRole::Condition(&tys))?;
                self.check_region(operation.regions[1], RegionRole::Yield(&tys))?;
            }
            OpKind::If => {
                expect(
                    n_regions == 2 && n_operands == 1,
                    "if needs a condition and two regions",
                )?;
                expect(
                    self.scalar(operation.operands[0])? == ScalarType::I1,
                    "if condition must be i1",
                )?;
                let tys: Vec<Type> = operation
                    .results
                    .iter()
                    .map(|&v| self.func.value_type(v).clone())
                    .collect();
                self.check_region(operation.regions[0], RegionRole::Yield(&tys))?;
                self.check_region(operation.regions[1], RegionRole::Yield(&tys))?;
            }
            OpKind::Parallel { level } => {
                expect(n_regions == 1 && n_results == 0, "malformed parallel")?;
                expect(
                    (1..=3).contains(&n_operands),
                    "parallel needs 1-3 upper bounds",
                )?;
                for &ub in &operation.operands {
                    self.expect_index(ub, "parallel upper bound")?;
                }
                let body = self.func.region(operation.regions[0]);
                expect(
                    body.args.len() == n_operands,
                    "parallel needs one iv per upper bound",
                )?;
                if *level == ParLevel::Thread {
                    expect(
                        self.parallel_stack.contains(&ParLevel::Block),
                        "thread-parallel must be nested in a block-parallel",
                    )?;
                }
                self.parallel_stack.push(*level);
                self.check_region(operation.regions[0], RegionRole::EmptyYield)?;
                self.parallel_stack.pop();
            }
            OpKind::Barrier { level } => {
                expect(
                    n_operands == 0 && n_results == 0 && n_regions == 0,
                    "malformed barrier",
                )?;
                expect(
                    self.parallel_stack.contains(level),
                    "barrier must be nested in a parallel loop of its level",
                )?;
            }
            OpKind::Alternatives { selected } => {
                expect(n_operands == 0 && n_results == 0, "malformed alternatives")?;
                expect(n_regions >= 1, "alternatives needs at least one region")?;
                if let Some(s) = selected {
                    expect(*s < n_regions, "selected alternative out of range")?;
                }
                for &r in &operation.regions {
                    self.check_region(r, RegionRole::EmptyYield)?;
                }
            }
            OpKind::Call { .. } => {
                expect(n_regions == 0, "call cannot carry regions")?;
            }
            OpKind::Yield | OpKind::Condition | OpKind::Return => {
                expect(n_results == 0 && n_regions == 0, "malformed terminator")?;
            }
        }
        Ok(())
    }
}

/// Verifies structural and type invariants of a function.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found: malformed operand/result/region
/// counts, type mismatches, misplaced terminators, uses before definition,
/// barriers outside their parallel level, or thread-parallel loops outside a
/// block-parallel loop.
pub fn verify_function(func: &Function) -> Result<(), VerifyError> {
    let mut v = Verifier {
        func,
        defined: Vec::new(),
        parallel_stack: Vec::new(),
    };
    v.check_region(func.body(), RegionRole::FuncBody)
}

/// Verifies every function in a module, plus call-graph sanity (callees
/// exist and argument counts match).
///
/// # Errors
///
/// Returns the first error encountered; see [`verify_function`].
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for func in module.functions() {
        verify_function(func)?;
        let mut result = Ok(());
        crate::walk::walk_ops(func, func.body(), &mut |op| {
            if result.is_err() {
                return;
            }
            if let OpKind::Call { callee } = &func.op(op).kind {
                match module.function(callee) {
                    None => {
                        result = Err(VerifyError {
                            function: func.name().to_string(),
                            message: format!("call to unknown function @{callee}"),
                        })
                    }
                    Some(target) => {
                        if target.params().len() != func.op(op).operands.len() {
                            result = Err(VerifyError {
                                function: func.name().to_string(),
                                message: format!("call to @{callee} with wrong argument count"),
                            });
                        }
                    }
                }
            }
        });
        result?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_function, parse_module};

    #[test]
    fn accepts_well_formed() {
        let f = parse_function(
            "func @k(%g: index, %m: memref<?xf32, global>) {
  %c = const 16 : index
  parallel<block> (%b) to (%g) {
    parallel<thread> (%t) to (%c) {
      barrier<thread>
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        verify_function(&f).unwrap();
    }

    #[test]
    fn rejects_barrier_outside_parallel() {
        let f = parse_function("func @f() {\n  barrier<thread>\n  return\n}");
        // The parser accepts it syntactically; verification must reject it.
        let err = verify_function(&f.unwrap()).unwrap_err();
        assert!(err.message.contains("barrier"));
    }

    #[test]
    fn rejects_thread_parallel_outside_block() {
        let f = parse_function(
            "func @f(%n: index) {\n  parallel<thread> (%t) to (%n) {\n    yield\n  }\n  return\n}",
        )
        .unwrap();
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("thread-parallel"));
    }

    #[test]
    fn rejects_type_mismatch() {
        let f = parse_function("func @f(%a: f32, %b: i32) {\n  %c = add %a, %b : f32\n  return\n}")
            .unwrap();
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("differ"));
    }

    #[test]
    fn rejects_missing_return() {
        let f = parse_function("func @f() {\n  yield\n}").unwrap();
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("return"));
    }

    #[test]
    fn rejects_bad_load_rank() {
        let f = parse_function(
            "func @f(%m: memref<?x?xf32, global>, %i: index) {\n  %v = load %m[%i] : f32\n  return\n}",
        )
        .unwrap();
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("rank"));
    }

    #[test]
    fn rejects_unknown_callee() {
        let m = parse_module("func @f() {\n  call @ghost() : ()\n  return\n}").unwrap();
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("unknown function"));
    }

    #[test]
    fn rejects_dynamic_shared_alloc() {
        let f = parse_function(
            "func @k(%g: index, %n: index) {
  %c = const 16 : index
  parallel<block> (%b) to (%g) {
    %s = alloc(%n) : memref<?xf32, shared>
    yield
  }
  return
}",
        )
        .unwrap();
        let err = verify_function(&f).unwrap_err();
        assert!(err.message.contains("static"));
    }
}
