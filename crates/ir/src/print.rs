//! Textual printer for the IR.
//!
//! The format round-trips through [`crate::parse`]; see that module for the
//! grammar. Values are numbered `%0, %1, …` in order of first definition.

use std::collections::HashMap;
use std::fmt::{self, Write as _};

use crate::ids::{OpId, RegionId, Value};
use crate::ops::{OpKind, Operation};
use crate::types::Type;
use crate::Function;

struct Printer<'f> {
    func: &'f Function,
    names: HashMap<Value, usize>,
    next: usize,
}

impl<'f> Printer<'f> {
    fn name(&mut self, v: Value) -> String {
        let next = &mut self.next;
        let id = *self.names.entry(v).or_insert_with(|| {
            let n = *next;
            *next += 1;
            n
        });
        format!("%{id}")
    }

    fn operand_list(&mut self, values: &[Value]) -> String {
        values
            .iter()
            .map(|&v| self.name(v))
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn print_region_body(
        &mut self,
        f: &mut fmt::Formatter<'_>,
        region: RegionId,
        indent: usize,
    ) -> fmt::Result {
        for &op in &self.func.region(region).ops.clone() {
            self.print_op(f, op, indent)?;
        }
        Ok(())
    }

    fn result_prefix(&mut self, op: &Operation) -> String {
        if op.results.is_empty() {
            String::new()
        } else {
            format!("{} = ", self.operand_list(&op.results))
        }
    }

    fn print_op(&mut self, f: &mut fmt::Formatter<'_>, id: OpId, indent: usize) -> fmt::Result {
        let op = self.func.op(id).clone();
        let pad = "  ".repeat(indent);
        match &op.kind {
            OpKind::ConstInt { value, ty } => {
                let r = self.result_prefix(&op);
                writeln!(f, "{pad}{r}const {value} : {ty}")
            }
            OpKind::ConstFloat { value, ty } => {
                let r = self.result_prefix(&op);
                writeln!(f, "{pad}{r}fconst {value:?} : {ty}")
            }
            OpKind::Binary(b) => {
                let r = self.result_prefix(&op);
                let ops = self.operand_list(&op.operands);
                let ty = self.func.value_type(op.results[0]);
                writeln!(f, "{pad}{r}{} {ops} : {ty}", b.mnemonic())
            }
            OpKind::Unary(u) => {
                let r = self.result_prefix(&op);
                let ops = self.operand_list(&op.operands);
                let ty = self.func.value_type(op.results[0]);
                writeln!(f, "{pad}{r}{} {ops} : {ty}", u.mnemonic())
            }
            OpKind::Cmp(p) => {
                let r = self.result_prefix(&op);
                let ops = self.operand_list(&op.operands);
                writeln!(f, "{pad}{r}cmp {} {ops}", p.mnemonic())
            }
            OpKind::Select => {
                let r = self.result_prefix(&op);
                let ops = self.operand_list(&op.operands);
                let ty = self.func.value_type(op.results[0]);
                writeln!(f, "{pad}{r}select {ops} : {ty}")
            }
            OpKind::Cast { to } => {
                let r = self.result_prefix(&op);
                let ops = self.operand_list(&op.operands);
                writeln!(f, "{pad}{r}cast {ops} : {to}")
            }
            OpKind::Alloc { .. } => {
                let r = self.result_prefix(&op);
                let ops = self.operand_list(&op.operands);
                let ty = self.func.value_type(op.results[0]);
                writeln!(f, "{pad}{r}alloc({ops}) : {ty}")
            }
            OpKind::Load => {
                let r = self.result_prefix(&op);
                let mem = self.name(op.operands[0]);
                let idx = self.operand_list(&op.operands[1..]);
                let ty = self.func.value_type(op.results[0]);
                writeln!(f, "{pad}{r}load {mem}[{idx}] : {ty}")
            }
            OpKind::Store => {
                let v = self.name(op.operands[0]);
                let mem = self.name(op.operands[1]);
                let idx = self.operand_list(&op.operands[2..]);
                writeln!(f, "{pad}store {v}, {mem}[{idx}]")
            }
            OpKind::Dim { index } => {
                let r = self.result_prefix(&op);
                let mem = self.name(op.operands[0]);
                writeln!(f, "{pad}{r}dim {mem}, {index}")
            }
            OpKind::For => {
                let r = self.result_prefix(&op);
                let region = op.regions[0];
                let args = self.func.region(region).args.clone();
                let iv = self.name(args[0]);
                let lb = self.name(op.operands[0]);
                let ub = self.name(op.operands[1]);
                let step = self.name(op.operands[2]);
                let mut header = format!("{pad}{r}for {iv} = {lb} to {ub} step {step}");
                if args.len() > 1 {
                    let pairs: Vec<String> = args[1..]
                        .iter()
                        .zip(&op.operands[3..])
                        .map(|(&a, &init)| {
                            let an = self.name(a);
                            let iname = self.name(init);
                            format!("{an} = {iname}")
                        })
                        .collect();
                    write!(header, " iter ({})", pairs.join(", ")).unwrap();
                }
                writeln!(f, "{header} {{")?;
                self.print_region_body(f, region, indent + 1)?;
                writeln!(f, "{pad}}}")
            }
            OpKind::While => {
                let r = self.result_prefix(&op);
                let cond_region = op.regions[0];
                let body_region = op.regions[1];
                let cond_args = self.func.region(cond_region).args.clone();
                let pairs: Vec<String> = cond_args
                    .iter()
                    .zip(&op.operands)
                    .map(|(&a, &init)| {
                        let an = self.name(a);
                        let iname = self.name(init);
                        format!("{an} = {iname}")
                    })
                    .collect();
                writeln!(f, "{pad}{r}while ({}) {{", pairs.join(", "))?;
                self.print_region_body(f, cond_region, indent + 1)?;
                let body_args = self.func.region(body_region).args.clone();
                let body_names = self.operand_list(&body_args);
                writeln!(f, "{pad}}} do ({body_names}) {{")?;
                self.print_region_body(f, body_region, indent + 1)?;
                writeln!(f, "{pad}}}")
            }
            OpKind::If => {
                let r = self.result_prefix(&op);
                let cond = self.name(op.operands[0]);
                writeln!(f, "{pad}{r}if {cond} {{")?;
                self.print_region_body(f, op.regions[0], indent + 1)?;
                let else_region = op.regions[1];
                let else_ops = &self.func.region(else_region).ops;
                // Skip printing a trivial `else { yield }` arm.
                let trivial_else = op.results.is_empty() && else_ops.len() == 1;
                if trivial_else {
                    writeln!(f, "{pad}}}")
                } else {
                    writeln!(f, "{pad}}} else {{")?;
                    self.print_region_body(f, else_region, indent + 1)?;
                    writeln!(f, "{pad}}}")
                }
            }
            OpKind::Parallel { level } => {
                let region = op.regions[0];
                let args = self.func.region(region).args.clone();
                let ivs = self.operand_list(&args);
                let ubs = self.operand_list(&op.operands);
                writeln!(f, "{pad}parallel<{level}> ({ivs}) to ({ubs}) {{")?;
                self.print_region_body(f, region, indent + 1)?;
                writeln!(f, "{pad}}}")
            }
            OpKind::Barrier { level } => writeln!(f, "{pad}barrier<{level}>"),
            OpKind::Yield => {
                if op.operands.is_empty() {
                    writeln!(f, "{pad}yield")
                } else {
                    let ops = self.operand_list(&op.operands);
                    writeln!(f, "{pad}yield {ops}")
                }
            }
            OpKind::Condition => {
                let ops = self.operand_list(&op.operands);
                writeln!(f, "{pad}condition {ops}")
            }
            OpKind::Alternatives { selected } => {
                match selected {
                    Some(i) => writeln!(f, "{pad}alternatives selected={i} {{")?,
                    None => writeln!(f, "{pad}alternatives {{")?,
                }
                for &region in &op.regions {
                    writeln!(f, "{pad}case {{")?;
                    self.print_region_body(f, region, indent + 1)?;
                    writeln!(f, "{pad}}}")?;
                }
                writeln!(f, "{pad}}}")
            }
            OpKind::Call { callee } => {
                let r = self.result_prefix(&op);
                let args = self.operand_list(&op.operands);
                let tys: Vec<String> = op
                    .results
                    .iter()
                    .map(|&v| self.func.value_type(v).to_string())
                    .collect();
                writeln!(f, "{pad}{r}call @{callee}({args}) : ({})", tys.join(", "))
            }
            OpKind::Return => {
                if op.operands.is_empty() {
                    writeln!(f, "{pad}return")
                } else {
                    let ops = self.operand_list(&op.operands);
                    writeln!(f, "{pad}return {ops}")
                }
            }
        }
    }
}

/// Prints a function in the textual format.
pub(crate) fn print_function(func: &Function, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let mut p = Printer {
        func,
        names: HashMap::new(),
        next: 0,
    };
    let params: Vec<String> = func
        .params()
        .iter()
        .map(|&v| {
            let n = p.name(v);
            format!("{n}: {}", type_str(func.value_type(v)))
        })
        .collect();
    writeln!(f, "func @{}({}) {{", func.name(), params.join(", "))?;
    p.print_region_body(f, func.body(), 1)?;
    writeln!(f, "}}")
}

fn type_str(ty: &Type) -> String {
    ty.to_string()
}
