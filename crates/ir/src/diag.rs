//! Unified diagnostics: one user-facing shape for every failure and
//! analysis finding in the pipeline.
//!
//! The compiler grew several disjoint error types (parse, verify, kernel
//! structure, frontend, simulator, tuner). They remain the *sources* of
//! truth — each layer keeps its precise error — but anything shown to a
//! user converts into a [`Diagnostic`] via `From` impls, so the facade
//! (`Compiled::diagnostics()`) and the CLI/bench binaries render every
//! failure uniformly:
//!
//! ```text
//! error[race-ww]: threads (0,1) and (1,0) both write %sm[0] in the same barrier interval
//!   --> @kernel/parallel<block>/parallel<thread>/store#12
//!   = help: guard the store with a single-thread condition or index by the thread id
//! ```

use std::fmt;

use crate::ids::OpId;
use crate::kernel::KernelError;
use crate::parse::ParseError;
use crate::verify::VerifyError;
use crate::{Function, OpKind, ParLevel};

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never blocks compilation.
    Note,
    /// Possible problem the analysis could not decide (symbolic bounds,
    /// non-affine indices). Reported, never fatal.
    Warning,
    /// Definite problem: malformed input, or a decidable race/divergence.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding or failure, in the uniform user-facing shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity of the finding.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `"race-ww"`, `"divergent-barrier"`,
    /// `"parse-error"`). Gates compare findings by code, so codes must not
    /// depend on incidental details like op numbering.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Where the finding is anchored: an op path such as
    /// `@kernel/parallel<block>/parallel<thread>/store#12`, or a source
    /// offset for textual inputs. `None` when the failure has no location.
    pub location: Option<String>,
    /// Optional remediation hint.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Creates an error diagnostic with no location.
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            location: None,
            suggestion: None,
        }
    }

    /// Creates a warning diagnostic with no location.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            code,
            message: message.into(),
            location: None,
            suggestion: None,
        }
    }

    /// Creates a note diagnostic with no location.
    pub fn note(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Note,
            code,
            message: message.into(),
            location: None,
            suggestion: None,
        }
    }

    /// Attaches a location string.
    pub fn with_location(mut self, location: impl Into<String>) -> Diagnostic {
        self.location = Some(location.into());
        self
    }

    /// Attaches the op path of `op` in `func` as the location.
    pub fn at_op(self, func: &Function, op: OpId) -> Diagnostic {
        self.with_location(op_path(func, op))
    }

    /// Attaches a remediation hint.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Returns `true` for error-level diagnostics.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(loc) = &self.location {
            write!(f, "\n  --> {loc}")?;
        }
        if let Some(s) = &self.suggestion {
            write!(f, "\n  = help: {s}")?;
        }
        Ok(())
    }
}

/// A short structural label for one op kind, used in op paths.
fn path_label(kind: &OpKind) -> String {
    match kind {
        OpKind::Parallel { level } => format!("parallel<{level}>"),
        OpKind::Barrier { level } => format!("barrier<{level}>"),
        OpKind::For => "for".into(),
        OpKind::While => "while".into(),
        OpKind::If => "if".into(),
        OpKind::Alternatives { .. } => "alternatives".into(),
        OpKind::Load => "load".into(),
        OpKind::Store => "store".into(),
        OpKind::Alloc { space } => format!("alloc<{space}>"),
        OpKind::Call { callee } => format!("call @{callee}"),
        other => format!("{other:?}").to_lowercase(),
    }
}

/// Renders the structural path of `op` inside `func`, e.g.
/// `@kernel/parallel<block>/parallel<thread>/store#12`. The trailing `#N`
/// is the op's arena index, which disambiguates siblings of the same kind.
pub fn op_path(func: &Function, op: OpId) -> String {
    let mut path = Vec::new();
    if find_path(func, func.body(), op, &mut path) {
        let mut out = format!("@{}", func.name());
        for &p in &path {
            out.push('/');
            out.push_str(&path_label(&func.op(p).kind));
        }
        out.push_str(&format!("#{}", op.index()));
        out
    } else {
        format!("@{}/op#{}", func.name(), op.index())
    }
}

fn find_path(func: &Function, region: crate::RegionId, target: OpId, path: &mut Vec<OpId>) -> bool {
    for &op in &func.region(region).ops {
        path.push(op);
        if op == target {
            return true;
        }
        for &r in &func.op(op).regions {
            if find_path(func, r, target, path) {
                return true;
            }
        }
        path.pop();
    }
    false
}

/// A sortable key for stable diagnostic ordering: severity (errors first),
/// then code, then location.
pub fn sort_key(d: &Diagnostic) -> (std::cmp::Reverse<Severity>, &'static str, String) {
    (
        std::cmp::Reverse(d.severity),
        d.code,
        d.location.clone().unwrap_or_default(),
    )
}

impl From<ParseError> for Diagnostic {
    fn from(e: ParseError) -> Diagnostic {
        Diagnostic::error("parse-error", e.message).with_location(format!("byte {}", e.offset))
    }
}

impl From<VerifyError> for Diagnostic {
    fn from(e: VerifyError) -> Diagnostic {
        Diagnostic::error("verify-error", e.message).with_location(format!("@{}", e.function))
    }
}

impl From<KernelError> for Diagnostic {
    fn from(e: KernelError) -> Diagnostic {
        Diagnostic::error("kernel-structure", e.message)
    }
}

/// Marker type so a barrier's level reads well in messages (re-exported for
/// analysis crates building diagnostics about barriers).
pub fn barrier_phrase(level: ParLevel) -> &'static str {
    match level {
        ParLevel::Block => "block-scope barrier",
        ParLevel::Thread => "thread-scope barrier",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_function;

    #[test]
    fn renders_location_and_suggestion() {
        let d = Diagnostic::error("race-ww", "two writes")
            .with_location("@k/store#3")
            .with_suggestion("add a barrier");
        let text = d.to_string();
        assert!(text.contains("error[race-ww]: two writes"));
        assert!(text.contains("--> @k/store#3"));
        assert!(text.contains("= help: add a barrier"));
    }

    #[test]
    fn op_path_walks_structure() {
        let func = parse_function(
            "func @k(%g: index) {
  %c8 = const 8 : index
  parallel<block> (%b) to (%g) {
    %sm = alloc() : memref<8xf32, shared>
    parallel<thread> (%t) to (%c8) {
      %v = load %sm[%t] : f32
      store %v, %sm[%t]
      yield
    }
    yield
  }
  return
}",
        )
        .unwrap();
        let store = crate::walk::collect_ops(&func, func.body())
            .into_iter()
            .find(|&o| matches!(func.op(o).kind, OpKind::Store))
            .unwrap();
        let path = op_path(&func, store);
        assert!(
            path.starts_with("@k/parallel<block>/parallel<thread>/store#"),
            "unexpected path {path}"
        );
    }

    #[test]
    fn severity_orders_errors_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }

    #[test]
    fn converts_parse_error() {
        let e = parse_function("func @k(").unwrap_err();
        let d: Diagnostic = e.into();
        assert_eq!(d.code, "parse-error");
        assert!(d.is_error());
        assert!(d.location.is_some());
    }

    #[test]
    fn converts_verify_error() {
        let e = VerifyError {
            function: "k".into(),
            message: "bad".into(),
        };
        let d: Diagnostic = e.into();
        assert_eq!(d.code, "verify-error");
        assert_eq!(d.location.as_deref(), Some("@k"));
    }
}
