//! Traversal and cloning utilities.

use std::collections::HashMap;

use crate::ids::{OpId, RegionId, Value};
use crate::Function;

/// Visits every operation nested under `region` in pre-order (an operation
/// is visited before the operations in its regions).
pub fn walk_ops(func: &Function, region: RegionId, visit: &mut impl FnMut(OpId)) {
    for &op in &func.region(region).ops {
        visit(op);
        for &r in &func.op(op).regions {
            walk_ops(func, r, visit);
        }
    }
}

/// Collects every operation nested under `region` in pre-order.
pub fn collect_ops(func: &Function, region: RegionId) -> Vec<OpId> {
    let mut out = Vec::new();
    walk_ops(func, region, &mut |op| out.push(op));
    out
}

/// Visits every operation and reports the region it directly belongs to.
pub fn walk_ops_with_region(
    func: &Function,
    region: RegionId,
    visit: &mut impl FnMut(RegionId, OpId),
) {
    for &op in &func.region(region).ops {
        visit(region, op);
        for &r in &func.op(op).regions {
            walk_ops_with_region(func, r, visit);
        }
    }
}

/// Deep-clones `src` (a region of `func`) into a fresh region of the same
/// function.
///
/// `value_map` maps original values to replacement values: region arguments
/// and operation results defined inside `src` get fresh values recorded in
/// the map; operands not present in the map (values defined outside `src`)
/// are kept as-is. Pre-seeding the map substitutes outside values, which is
/// how unroll instances remap induction variables.
pub fn clone_region(
    func: &mut Function,
    src: RegionId,
    value_map: &mut HashMap<Value, Value>,
) -> RegionId {
    let dst = func.new_region();
    let args = func.region(src).args.clone();
    for a in args {
        let ty = func.value_type(a).clone();
        let na = func.add_region_arg(dst, ty);
        value_map.insert(a, na);
    }
    let ops = func.region(src).ops.clone();
    for op in ops {
        let cloned = clone_op(func, op, value_map);
        func.push_op(dst, cloned);
    }
    dst
}

/// Deep-clones one operation (including nested regions), remapping operands
/// through `value_map` and recording fresh results in it. The clone is not
/// attached to any region.
pub fn clone_op(func: &mut Function, op: OpId, value_map: &mut HashMap<Value, Value>) -> OpId {
    let operation = func.op(op).clone();
    let operands: Vec<Value> = operation
        .operands
        .iter()
        .map(|v| *value_map.get(v).unwrap_or(v))
        .collect();
    let regions: Vec<RegionId> = operation
        .regions
        .iter()
        .map(|&r| clone_region(func, r, value_map))
        .collect();
    let result_types: Vec<_> = operation
        .results
        .iter()
        .map(|&v| func.value_type(v).clone())
        .collect();
    let new_op = func.make_op(operation.kind, operands, result_types, regions);
    let new_results = func.op(new_op).results.clone();
    for (old, new) in operation.results.iter().zip(new_results) {
        value_map.insert(*old, new);
    }
    new_op
}

/// Rewrites every operand use in and under `region` according to `map`.
/// Values not present in the map are left untouched.
pub fn replace_uses_in_region(func: &mut Function, region: RegionId, map: &HashMap<Value, Value>) {
    let ops = func.region(region).ops.clone();
    for op in ops {
        for operand in &mut func.op_mut(op).operands {
            if let Some(&n) = map.get(operand) {
                *operand = n;
            }
        }
        let nested = func.op(op).regions.clone();
        for r in nested {
            replace_uses_in_region(func, r, map);
        }
    }
}

/// Builds a map from each value to the operation defining it (region
/// arguments are absent from the map).
pub fn def_map(func: &Function, region: RegionId) -> HashMap<Value, OpId> {
    let mut map = HashMap::new();
    walk_ops(func, region, &mut |op| {
        for &r in &func.op(op).results {
            map.insert(r, op);
        }
    });
    map
}

/// Counts uses of every value in and under `region`.
pub fn use_counts(func: &Function, region: RegionId) -> HashMap<Value, usize> {
    let mut counts = HashMap::new();
    walk_ops(func, region, &mut |op| {
        for &operand in &func.op(op).operands {
            *counts.entry(operand).or_insert(0) += 1;
        }
    });
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FuncBuilder, ParLevel, ScalarType, Type};

    fn sample() -> Function {
        let mut func = Function::new("f");
        let n = func.add_param(Type::index());
        let mut b = FuncBuilder::new(&mut func);
        let c0 = b.const_index(0);
        let c1 = b.const_index(1);
        b.for_loop(c0, n, c1, &[], |b, iv, _| {
            let _ = b.add(iv, iv);
            vec![]
        });
        b.ret(&[]);
        func
    }

    #[test]
    fn walk_visits_nested_ops() {
        let func = sample();
        let ops = collect_ops(&func, func.body());
        // const, const, for, add, yield, return
        assert_eq!(ops.len(), 6);
    }

    #[test]
    fn clone_region_remaps_defs() {
        let mut func = sample();
        let body = func.body();
        let mut map = HashMap::new();
        let cloned = clone_region(&mut func, body, &mut map);
        let orig_count = collect_ops(&func, body).len();
        let clone_count = collect_ops(&func, cloned).len();
        assert_eq!(orig_count, clone_count);
        // Results of cloned ops must be fresh values.
        for (old, new) in &map {
            assert_ne!(old, new);
        }
    }

    #[test]
    fn clone_region_substitutes_seeded_values() {
        // Clone the body of an `if`, substituting an outer value: this is
        // exactly how unroll instances remap induction variables.
        let mut func = Function::new("f");
        let a = func.add_param(Type::Scalar(ScalarType::F32));
        let b_param = func.add_param(Type::Scalar(ScalarType::F32));
        let mut b = FuncBuilder::new(&mut func);
        let t = b.const_bool(true);
        b.if_then(t, |b| {
            let _ = b.add(a, a);
        });
        b.ret(&[]);
        let body = func.body();
        let if_op = func.region(body).ops[1];
        let then_region = func.op(if_op).regions[0];
        let mut map = HashMap::new();
        map.insert(a, b_param);
        let cloned = clone_region(&mut func, then_region, &mut map);
        let first = func.region(cloned).ops[0];
        assert_eq!(func.op(first).operands, vec![b_param, b_param]);
    }

    #[test]
    fn use_counts_counts_all_uses() {
        let mut func = Function::new("f");
        let a = func.add_param(Type::Scalar(ScalarType::F32));
        let mut b = FuncBuilder::new(&mut func);
        let s = b.add(a, a);
        let t = b.add(s, a);
        b.ret(&[t]);
        let counts = use_counts(&func, func.body());
        assert_eq!(counts[&a], 3);
        assert_eq!(counts[&s], 1);
        assert_eq!(counts[&t], 1);
    }

    #[test]
    fn def_map_finds_defs() {
        let mut func = Function::new("k");
        let g = func.add_param(Type::index());
        let mut b = FuncBuilder::new(&mut func);
        let c = b.const_index(8);
        b.parallel(ParLevel::Block, &[g], |b, _| {
            let _ = b.add(c, c);
        });
        b.ret(&[]);
        let dm = def_map(&func, func.body());
        assert!(dm.contains_key(&c));
        assert!(!dm.contains_key(&g), "params are not op results");
    }
}
