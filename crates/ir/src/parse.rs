//! Parser for the textual IR format produced by the printer.
//!
//! The grammar is line-oriented only by convention; tokens carry all
//! structure. Every function printed with `Display` parses back to an
//! equivalent function (checked by round-trip property tests).

use std::collections::HashMap;
use std::fmt;

use crate::ids::{RegionId, Value};
use crate::ops::{BinOp, CmpPred, MemSpace, OpKind, ParLevel, UnOp};
use crate::types::{MemRefType, ScalarType, Type, DYNAMIC};
use crate::{Function, Module};

/// Error produced when parsing textual IR fails.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset in the input near which the failure occurred.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Percent(String),
    At(String),
    Int(i64),
    Float(f64),
    MemRef(MemRefType),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Lt,
    Gt,
    Comma,
    Colon,
    Eq,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let tok = match c {
            '{' => {
                i += 1;
                Tok::LBrace
            }
            '}' => {
                i += 1;
                Tok::RBrace
            }
            '(' => {
                i += 1;
                Tok::LParen
            }
            ')' => {
                i += 1;
                Tok::RParen
            }
            '[' => {
                i += 1;
                Tok::LBracket
            }
            ']' => {
                i += 1;
                Tok::RBracket
            }
            '<' => {
                i += 1;
                Tok::Lt
            }
            '>' => {
                i += 1;
                Tok::Gt
            }
            ',' => {
                i += 1;
                Tok::Comma
            }
            ':' => {
                i += 1;
                Tok::Colon
            }
            '=' => {
                i += 1;
                Tok::Eq
            }
            '%' | '@' => {
                i += 1;
                let s = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let name = src[s..i].to_string();
                if name.is_empty() {
                    return Err(ParseError {
                        message: format!("empty name after '{c}'"),
                        offset: start,
                    });
                }
                if c == '%' {
                    Tok::Percent(name)
                } else {
                    Tok::At(name)
                }
            }
            _ if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                i += 1;
                let mut is_float = false;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_digit() {
                        i += 1;
                    } else if b == '.' && bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit()) {
                        is_float = true;
                        i += 1;
                    } else if (b == 'e' || b == 'E')
                        && bytes
                            .get(i + 1)
                            .is_some_and(|&n| n.is_ascii_digit() || n == b'-' || n == b'+')
                    {
                        is_float = true;
                        i += 2;
                    } else {
                        break;
                    }
                }
                let text = &src[start..i];
                if is_float {
                    Tok::Float(text.parse().map_err(|e| ParseError {
                        message: format!("bad float literal {text}: {e}"),
                        offset: start,
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|e| ParseError {
                        message: format!("bad int literal {text}: {e}"),
                        offset: start,
                    })?)
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                if word == "memref" && bytes.get(i) == Some(&b'<') {
                    i += 1; // consume '<'
                    let body_start = i;
                    while i < bytes.len() && bytes[i] != b'>' {
                        i += 1;
                    }
                    if i == bytes.len() {
                        return Err(ParseError {
                            message: "unterminated memref type".into(),
                            offset: start,
                        });
                    }
                    let body = &src[body_start..i];
                    i += 1; // consume '>'
                    Tok::MemRef(parse_memref_body(body, start)?)
                } else {
                    Tok::Ident(word.to_string())
                }
            }
            _ => {
                return Err(ParseError {
                    message: format!("unexpected character {c:?}"),
                    offset: start,
                })
            }
        };
        toks.push((tok, start));
    }
    Ok(toks)
}

fn parse_memref_body(body: &str, offset: usize) -> Result<MemRefType, ParseError> {
    // e.g. "?x16xf32, shared"
    let (shape_elem, space) = body.split_once(',').ok_or_else(|| ParseError {
        message: format!("memref type missing address space: {body}"),
        offset,
    })?;
    let space = match space.trim() {
        "global" => MemSpace::Global,
        "shared" => MemSpace::Shared,
        "local" => MemSpace::Local,
        other => {
            return Err(ParseError {
                message: format!("unknown address space {other}"),
                offset,
            })
        }
    };
    let mut parts: Vec<&str> = shape_elem.trim().split('x').collect();
    let elem_str = parts.pop().ok_or_else(|| ParseError {
        message: "memref type missing element type".into(),
        offset,
    })?;
    let elem = parse_scalar_name(elem_str).ok_or_else(|| ParseError {
        message: format!("unknown element type {elem_str}"),
        offset,
    })?;
    let mut shape = Vec::new();
    for p in parts {
        if p == "?" {
            shape.push(DYNAMIC);
        } else {
            shape.push(p.parse().map_err(|e| ParseError {
                message: format!("bad dimension {p}: {e}"),
                offset,
            })?);
        }
    }
    Ok(MemRefType::new(elem, shape, space))
}

fn parse_scalar_name(s: &str) -> Option<ScalarType> {
    match s {
        "i1" => Some(ScalarType::I1),
        "i32" => Some(ScalarType::I32),
        "i64" => Some(ScalarType::I64),
        "f32" => Some(ScalarType::F32),
        "f64" => Some(ScalarType::F64),
        "index" => Some(ScalarType::Index),
        _ => None,
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseError {
        let offset = self.toks.get(self.pos).map_or(usize::MAX, |t| t.1);
        ParseError {
            message: message.into(),
            offset,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.0)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|t| t.0.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        let t = self.next()?;
        if t == tok {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.err(format!("expected {tok:?}, found {t:?}")))
        }
    }

    fn expect_ident(&mut self, word: &str) -> Result<(), ParseError> {
        match self.next()? {
            Tok::Ident(w) if w == word => Ok(()),
            t => {
                self.pos -= 1;
                Err(self.err(format!("expected '{word}', found {t:?}")))
            }
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(w) => Ok(w),
            t => {
                self.pos -= 1;
                Err(self.err(format!("expected identifier, found {t:?}")))
            }
        }
    }

    fn percent(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Percent(w) => Ok(w),
            t => {
                self.pos -= 1;
                Err(self.err(format!("expected %value, found {t:?}")))
            }
        }
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        match self.next()? {
            Tok::MemRef(m) => Ok(Type::MemRef(m)),
            Tok::Ident(w) => parse_scalar_name(&w).map(Type::Scalar).ok_or_else(|| {
                self.pos -= 1;
                self.err(format!("unknown type {w}"))
            }),
            t => {
                self.pos -= 1;
                Err(self.err(format!("expected type, found {t:?}")))
            }
        }
    }

    fn parse_scalar_type(&mut self) -> Result<ScalarType, ParseError> {
        match self.parse_type()? {
            Type::Scalar(s) => Ok(s),
            Type::MemRef(_) => Err(self.err("expected scalar type, found memref")),
        }
    }
}

struct FuncParser<'p> {
    p: &'p mut Parser,
    func: Function,
    values: HashMap<String, Value>,
}

impl<'p> FuncParser<'p> {
    fn lookup(&mut self, name: &str) -> Result<Value, ParseError> {
        self.values
            .get(name)
            .copied()
            .ok_or_else(|| self.p.err(format!("use of undefined value %{name}")))
    }

    fn operand(&mut self) -> Result<Value, ParseError> {
        let name = self.p.percent()?;
        self.lookup(&name)
    }

    /// Parses a comma-separated `%value` list until (excluding) the given
    /// closing token.
    fn operand_list_until(&mut self, close: &Tok) -> Result<Vec<Value>, ParseError> {
        let mut out = Vec::new();
        if self.p.peek() == Some(close) {
            return Ok(out);
        }
        loop {
            out.push(self.operand()?);
            if self.p.peek() == Some(&Tok::Comma) {
                self.p.next()?;
            } else {
                return Ok(out);
            }
        }
    }

    fn bind(&mut self, name: String, value: Value) {
        self.values.insert(name, value);
    }

    /// Parses operations into `region` until a closing `}` (consumed).
    fn parse_region_ops(&mut self, region: RegionId) -> Result<(), ParseError> {
        loop {
            if self.p.peek() == Some(&Tok::RBrace) {
                self.p.next()?;
                return Ok(());
            }
            self.parse_op(region)?;
        }
    }

    fn parse_op(&mut self, region: RegionId) -> Result<(), ParseError> {
        // Optional result list: %a, %b =
        let mut result_names = Vec::new();
        while let Some(Tok::Percent(_)) = self.p.peek() {
            let name = self.p.percent()?;
            result_names.push(name);
            match self.p.peek() {
                Some(Tok::Comma) => {
                    self.p.next()?;
                }
                Some(Tok::Eq) => {
                    self.p.next()?;
                    break;
                }
                _ => return Err(self.p.err("expected ',' or '=' after result name")),
            }
        }
        let mnemonic = self.p.ident()?;
        match mnemonic.as_str() {
            "const" => {
                let value = match self.p.next()? {
                    Tok::Int(v) => v,
                    t => return Err(self.p.err(format!("expected integer, found {t:?}"))),
                };
                self.p.expect(Tok::Colon)?;
                let ty = self.p.parse_scalar_type()?;
                self.finish_simple(
                    region,
                    OpKind::ConstInt { value, ty },
                    vec![],
                    vec![Type::Scalar(ty)],
                    result_names,
                )
            }
            "fconst" => {
                let value = match self.p.next()? {
                    Tok::Float(v) => v,
                    Tok::Int(v) => v as f64,
                    t => return Err(self.p.err(format!("expected float, found {t:?}"))),
                };
                self.p.expect(Tok::Colon)?;
                let ty = self.p.parse_scalar_type()?;
                self.finish_simple(
                    region,
                    OpKind::ConstFloat { value, ty },
                    vec![],
                    vec![Type::Scalar(ty)],
                    result_names,
                )
            }
            "cmp" => {
                let pred_name = self.p.ident()?;
                let pred = CmpPred::ALL
                    .iter()
                    .copied()
                    .find(|p| p.mnemonic() == pred_name)
                    .ok_or_else(|| self.p.err(format!("unknown predicate {pred_name}")))?;
                let lhs = self.operand()?;
                self.p.expect(Tok::Comma)?;
                let rhs = self.operand()?;
                self.finish_simple(
                    region,
                    OpKind::Cmp(pred),
                    vec![lhs, rhs],
                    vec![Type::Scalar(ScalarType::I1)],
                    result_names,
                )
            }
            "select" => {
                let c = self.operand()?;
                self.p.expect(Tok::Comma)?;
                let t = self.operand()?;
                self.p.expect(Tok::Comma)?;
                let e = self.operand()?;
                self.p.expect(Tok::Colon)?;
                let ty = self.p.parse_type()?;
                self.finish_simple(
                    region,
                    OpKind::Select,
                    vec![c, t, e],
                    vec![ty],
                    result_names,
                )
            }
            "cast" => {
                let v = self.operand()?;
                self.p.expect(Tok::Colon)?;
                let to = self.p.parse_scalar_type()?;
                self.finish_simple(
                    region,
                    OpKind::Cast { to },
                    vec![v],
                    vec![Type::Scalar(to)],
                    result_names,
                )
            }
            "alloc" => {
                self.p.expect(Tok::LParen)?;
                let dims = self.operand_list_until(&Tok::RParen)?;
                self.p.expect(Tok::RParen)?;
                self.p.expect(Tok::Colon)?;
                let ty = self.p.parse_type()?;
                let space = ty
                    .as_memref()
                    .ok_or_else(|| self.p.err("alloc must produce a memref"))?
                    .space;
                self.finish_simple(
                    region,
                    OpKind::Alloc { space },
                    dims,
                    vec![ty],
                    result_names,
                )
            }
            "load" => {
                let mem = self.operand()?;
                self.p.expect(Tok::LBracket)?;
                let idx = self.operand_list_until(&Tok::RBracket)?;
                self.p.expect(Tok::RBracket)?;
                self.p.expect(Tok::Colon)?;
                let ty = self.p.parse_type()?;
                let mut operands = vec![mem];
                operands.extend(idx);
                self.finish_simple(region, OpKind::Load, operands, vec![ty], result_names)
            }
            "store" => {
                let v = self.operand()?;
                self.p.expect(Tok::Comma)?;
                let mem = self.operand()?;
                self.p.expect(Tok::LBracket)?;
                let idx = self.operand_list_until(&Tok::RBracket)?;
                self.p.expect(Tok::RBracket)?;
                let mut operands = vec![v, mem];
                operands.extend(idx);
                self.finish_simple(region, OpKind::Store, operands, vec![], result_names)
            }
            "dim" => {
                let mem = self.operand()?;
                self.p.expect(Tok::Comma)?;
                let index = match self.p.next()? {
                    Tok::Int(v) if v >= 0 => v as usize,
                    t => return Err(self.p.err(format!("expected dimension index, found {t:?}"))),
                };
                self.finish_simple(
                    region,
                    OpKind::Dim { index },
                    vec![mem],
                    vec![Type::index()],
                    result_names,
                )
            }
            "for" => self.parse_for(region, result_names),
            "while" => self.parse_while(region, result_names),
            "if" => self.parse_if(region, result_names),
            "parallel" => self.parse_parallel(region),
            "barrier" => {
                self.p.expect(Tok::Lt)?;
                let level = self.parse_level()?;
                self.p.expect(Tok::Gt)?;
                self.finish_simple(
                    region,
                    OpKind::Barrier { level },
                    vec![],
                    vec![],
                    result_names,
                )
            }
            "alternatives" => self.parse_alternatives(region),
            "yield" => {
                let operands = self.yield_like_operands()?;
                self.finish_simple(region, OpKind::Yield, operands, vec![], result_names)
            }
            "condition" => {
                let operands = self.yield_like_operands()?;
                self.finish_simple(region, OpKind::Condition, operands, vec![], result_names)
            }
            "return" => {
                let operands = self.yield_like_operands()?;
                self.finish_simple(region, OpKind::Return, operands, vec![], result_names)
            }
            "call" => {
                let callee = match self.p.next()? {
                    Tok::At(name) => name,
                    t => return Err(self.p.err(format!("expected @callee, found {t:?}"))),
                };
                self.p.expect(Tok::LParen)?;
                let args = self.operand_list_until(&Tok::RParen)?;
                self.p.expect(Tok::RParen)?;
                self.p.expect(Tok::Colon)?;
                self.p.expect(Tok::LParen)?;
                let mut tys = Vec::new();
                if self.p.peek() != Some(&Tok::RParen) {
                    loop {
                        tys.push(self.p.parse_type()?);
                        if self.p.peek() == Some(&Tok::Comma) {
                            self.p.next()?;
                        } else {
                            break;
                        }
                    }
                }
                self.p.expect(Tok::RParen)?;
                self.finish_simple(region, OpKind::Call { callee }, args, tys, result_names)
            }
            other => {
                // Binary and unary mnemonics share the generic `<op> %a(, %b) : ty` form.
                if let Some(bin) = BinOp::ALL.iter().copied().find(|b| b.mnemonic() == other) {
                    let lhs = self.operand()?;
                    self.p.expect(Tok::Comma)?;
                    let rhs = self.operand()?;
                    self.p.expect(Tok::Colon)?;
                    let ty = self.p.parse_type()?;
                    self.finish_simple(
                        region,
                        OpKind::Binary(bin),
                        vec![lhs, rhs],
                        vec![ty],
                        result_names,
                    )
                } else if let Some(un) = UnOp::ALL.iter().copied().find(|u| u.mnemonic() == other) {
                    let v = self.operand()?;
                    self.p.expect(Tok::Colon)?;
                    let ty = self.p.parse_type()?;
                    self.finish_simple(region, OpKind::Unary(un), vec![v], vec![ty], result_names)
                } else {
                    Err(self.p.err(format!("unknown operation {other}")))
                }
            }
        }
    }

    fn yield_like_operands(&mut self) -> Result<Vec<Value>, ParseError> {
        let mut operands = Vec::new();
        while let Some(Tok::Percent(_)) = self.p.peek() {
            operands.push(self.operand()?);
            if self.p.peek() == Some(&Tok::Comma) {
                self.p.next()?;
            } else {
                break;
            }
        }
        Ok(operands)
    }

    fn parse_level(&mut self) -> Result<ParLevel, ParseError> {
        match self.p.ident()?.as_str() {
            "block" => Ok(ParLevel::Block),
            "thread" => Ok(ParLevel::Thread),
            other => Err(self.p.err(format!("unknown parallel level {other}"))),
        }
    }

    fn finish_simple(
        &mut self,
        region: RegionId,
        kind: OpKind,
        operands: Vec<Value>,
        result_types: Vec<Type>,
        result_names: Vec<String>,
    ) -> Result<(), ParseError> {
        if result_names.len() != result_types.len() {
            return Err(self.p.err(format!(
                "expected {} results, found {}",
                result_types.len(),
                result_names.len()
            )));
        }
        let op = self.func.make_op(kind, operands, result_types, vec![]);
        self.func.push_op(region, op);
        let results = self.func.op(op).results.clone();
        for (name, value) in result_names.into_iter().zip(results) {
            self.bind(name, value);
        }
        Ok(())
    }

    fn parse_for(&mut self, region: RegionId, result_names: Vec<String>) -> Result<(), ParseError> {
        let iv_name = self.p.percent()?;
        self.p.expect(Tok::Eq)?;
        let lb = self.operand()?;
        self.p.expect_ident("to")?;
        let ub = self.operand()?;
        self.p.expect_ident("step")?;
        let step = self.operand()?;
        let mut inits = Vec::new();
        let mut iter_names = Vec::new();
        if let Some(Tok::Ident(w)) = self.p.peek() {
            if w == "iter" {
                self.p.next()?;
                self.p.expect(Tok::LParen)?;
                loop {
                    let name = self.p.percent()?;
                    self.p.expect(Tok::Eq)?;
                    let init = self.operand()?;
                    iter_names.push(name);
                    inits.push(init);
                    if self.p.peek() == Some(&Tok::Comma) {
                        self.p.next()?;
                    } else {
                        break;
                    }
                }
                self.p.expect(Tok::RParen)?;
            }
        }
        self.p.expect(Tok::LBrace)?;
        let body = self.func.new_region();
        let iv = self.func.add_region_arg(body, Type::index());
        self.bind(iv_name, iv);
        let mut result_types = Vec::new();
        for (name, &init) in iter_names.iter().zip(&inits) {
            let ty = self.func.value_type(init).clone();
            let arg = self.func.add_region_arg(body, ty.clone());
            self.bind(name.clone(), arg);
            result_types.push(ty);
        }
        self.parse_region_ops(body)?;
        let mut operands = vec![lb, ub, step];
        operands.extend(inits);
        let op = self
            .func
            .make_op(OpKind::For, operands, result_types, vec![body]);
        self.func.push_op(region, op);
        let results = self.func.op(op).results.clone();
        if result_names.len() != results.len() {
            return Err(self.p.err("for result count mismatch"));
        }
        for (name, value) in result_names.into_iter().zip(results) {
            self.bind(name, value);
        }
        Ok(())
    }

    fn parse_while(
        &mut self,
        region: RegionId,
        result_names: Vec<String>,
    ) -> Result<(), ParseError> {
        self.p.expect(Tok::LParen)?;
        let mut inits = Vec::new();
        let mut arg_names = Vec::new();
        loop {
            let name = self.p.percent()?;
            self.p.expect(Tok::Eq)?;
            let init = self.operand()?;
            arg_names.push(name);
            inits.push(init);
            if self.p.peek() == Some(&Tok::Comma) {
                self.p.next()?;
            } else {
                break;
            }
        }
        self.p.expect(Tok::RParen)?;
        self.p.expect(Tok::LBrace)?;
        let tys: Vec<Type> = inits
            .iter()
            .map(|&v| self.func.value_type(v).clone())
            .collect();
        let cond_region = self.func.new_region();
        for (name, ty) in arg_names.iter().zip(&tys) {
            let arg = self.func.add_region_arg(cond_region, ty.clone());
            self.bind(name.clone(), arg);
        }
        self.parse_region_ops(cond_region)?;
        self.p.expect_ident("do")?;
        self.p.expect(Tok::LParen)?;
        let mut body_names = Vec::new();
        if self.p.peek() != Some(&Tok::RParen) {
            loop {
                body_names.push(self.p.percent()?);
                if self.p.peek() == Some(&Tok::Comma) {
                    self.p.next()?;
                } else {
                    break;
                }
            }
        }
        self.p.expect(Tok::RParen)?;
        self.p.expect(Tok::LBrace)?;
        let body_region = self.func.new_region();
        for (name, ty) in body_names.iter().zip(&tys) {
            let arg = self.func.add_region_arg(body_region, ty.clone());
            self.bind(name.clone(), arg);
        }
        self.parse_region_ops(body_region)?;
        let op = self
            .func
            .make_op(OpKind::While, inits, tys, vec![cond_region, body_region]);
        self.func.push_op(region, op);
        let results = self.func.op(op).results.clone();
        if result_names.len() != results.len() {
            return Err(self.p.err("while result count mismatch"));
        }
        for (name, value) in result_names.into_iter().zip(results) {
            self.bind(name, value);
        }
        Ok(())
    }

    fn parse_if(&mut self, region: RegionId, result_names: Vec<String>) -> Result<(), ParseError> {
        let cond = self.operand()?;
        self.p.expect(Tok::LBrace)?;
        let then_region = self.func.new_region();
        self.parse_region_ops(then_region)?;
        let else_region = self.func.new_region();
        let has_else = matches!(self.p.peek(), Some(Tok::Ident(w)) if w == "else");
        if has_else {
            self.p.next()?;
            self.p.expect(Tok::LBrace)?;
            self.parse_region_ops(else_region)?;
        } else {
            let y = self.func.make_op(OpKind::Yield, vec![], vec![], vec![]);
            self.func.push_op(else_region, y);
        }
        // Result types come from the then region's terminator.
        let then_yield = *self
            .func
            .region(then_region)
            .ops
            .last()
            .ok_or_else(|| self.p.err("empty if region"))?;
        let result_types: Vec<Type> = self
            .func
            .op(then_yield)
            .operands
            .clone()
            .iter()
            .map(|&v| self.func.value_type(v).clone())
            .collect();
        if result_names.len() != result_types.len() {
            return Err(self.p.err("if result count mismatch"));
        }
        let op = self.func.make_op(
            OpKind::If,
            vec![cond],
            result_types,
            vec![then_region, else_region],
        );
        self.func.push_op(region, op);
        let results = self.func.op(op).results.clone();
        for (name, value) in result_names.into_iter().zip(results) {
            self.bind(name, value);
        }
        Ok(())
    }

    fn parse_parallel(&mut self, region: RegionId) -> Result<(), ParseError> {
        self.p.expect(Tok::Lt)?;
        let level = self.parse_level()?;
        self.p.expect(Tok::Gt)?;
        self.p.expect(Tok::LParen)?;
        let mut iv_names = Vec::new();
        loop {
            iv_names.push(self.p.percent()?);
            if self.p.peek() == Some(&Tok::Comma) {
                self.p.next()?;
            } else {
                break;
            }
        }
        self.p.expect(Tok::RParen)?;
        self.p.expect_ident("to")?;
        self.p.expect(Tok::LParen)?;
        let ubs = self.operand_list_until(&Tok::RParen)?;
        self.p.expect(Tok::RParen)?;
        self.p.expect(Tok::LBrace)?;
        if ubs.len() != iv_names.len() {
            return Err(self.p.err("parallel iv/ub count mismatch"));
        }
        let body = self.func.new_region();
        for name in iv_names {
            let arg = self.func.add_region_arg(body, Type::index());
            self.bind(name, arg);
        }
        self.parse_region_ops(body)?;
        let op = self
            .func
            .make_op(OpKind::Parallel { level }, ubs, vec![], vec![body]);
        self.func.push_op(region, op);
        Ok(())
    }

    fn parse_alternatives(&mut self, region: RegionId) -> Result<(), ParseError> {
        let mut selected = None;
        if let Some(Tok::Ident(w)) = self.p.peek() {
            if w == "selected" {
                self.p.next()?;
                self.p.expect(Tok::Eq)?;
                match self.p.next()? {
                    Tok::Int(v) if v >= 0 => selected = Some(v as usize),
                    t => return Err(self.p.err(format!("expected selected index, found {t:?}"))),
                }
            }
        }
        self.p.expect(Tok::LBrace)?;
        let mut regions = Vec::new();
        loop {
            match self.p.next()? {
                Tok::RBrace => break,
                Tok::Ident(w) if w == "case" => {
                    self.p.expect(Tok::LBrace)?;
                    let r = self.func.new_region();
                    self.parse_region_ops(r)?;
                    regions.push(r);
                }
                t => return Err(self.p.err(format!("expected 'case' or '}}', found {t:?}"))),
            }
        }
        let op = self
            .func
            .make_op(OpKind::Alternatives { selected }, vec![], vec![], regions);
        self.func.push_op(region, op);
        Ok(())
    }
}

fn parse_one_function(p: &mut Parser) -> Result<Function, ParseError> {
    p.expect_ident("func")?;
    let name = match p.next()? {
        Tok::At(name) => name,
        t => return Err(p.err(format!("expected @name, found {t:?}"))),
    };
    p.expect(Tok::LParen)?;
    let mut func = Function::new(name);
    let mut values = HashMap::new();
    if p.peek() != Some(&Tok::RParen) {
        loop {
            let pname = p.percent()?;
            p.expect(Tok::Colon)?;
            let ty = p.parse_type()?;
            let v = func.add_param(ty);
            values.insert(pname, v);
            if p.peek() == Some(&Tok::Comma) {
                p.next()?;
            } else {
                break;
            }
        }
    }
    p.expect(Tok::RParen)?;
    p.expect(Tok::LBrace)?;
    let body = func.body();
    let mut fp = FuncParser { p, func, values };
    fp.parse_region_ops(body)?;
    Ok(fp.func)
}

/// Parses a single function from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax or name-resolution
/// problem encountered.
///
/// # Example
///
/// ```
/// let text = "func @f(%0: index) {\n  return\n}\n";
/// let func = respec_ir::parse_function(text)?;
/// assert_eq!(func.name(), "f");
/// # Ok::<(), respec_ir::ParseError>(())
/// ```
pub fn parse_function(src: &str) -> Result<Function, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let f = parse_one_function(&mut p)?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing input after function"));
    }
    Ok(f)
}

/// Parses a module containing any number of functions.
///
/// # Errors
///
/// Returns a [`ParseError`] on the first malformed function.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut module = Module::new();
    while p.pos != p.toks.len() {
        module.add_function(parse_one_function(&mut p)?);
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(text: &str) {
        let f = parse_function(text).expect("first parse");
        crate::verify_function(&f).expect("verification");
        let printed = f.to_string();
        let f2 = parse_function(&printed).expect("reparse");
        assert_eq!(printed, f2.to_string(), "printer must be a fixpoint");
    }

    #[test]
    fn parses_minimal_function() {
        let f = parse_function("func @f() { return }").unwrap();
        assert_eq!(f.name(), "f");
        assert!(f.params().is_empty());
    }

    #[test]
    fn round_trips_arith() {
        round_trip(
            "func @f(%a: f32) {\n  %c = fconst 1.5 : f32\n  %s = add %a, %c : f32\n  %q = sqrt %s : f32\n  return %q\n}",
        );
    }

    #[test]
    fn round_trips_kernel() {
        round_trip(
            "func @k(%g: index, %m: memref<?xf32, global>) {
  %c32 = const 32 : index
  parallel<block> (%b) to (%g) {
    %sm = alloc() : memref<32xf32, shared>
    parallel<thread> (%t) to (%c32) {
      %base = mul %b, %c32 : index
      %i = add %base, %t : index
      %v = load %m[%i] : f32
      store %v, %sm[%t]
      barrier<thread>
      %w = load %sm[%t] : f32
      store %w, %m[%i]
      yield
    }
    yield
  }
  return
}",
        );
    }

    #[test]
    fn round_trips_for_with_iters() {
        round_trip(
            "func @f(%n: index) {
  %c0 = const 0 : index
  %c1 = const 1 : index
  %z = fconst 0.0 : f32
  %r = for %i = %c0 to %n step %c1 iter (%acc = %z) {
    %f = cast %i : f32
    %nx = add %acc, %f : f32
    yield %nx
  }
  return %r
}",
        );
    }

    #[test]
    fn round_trips_if_and_while() {
        round_trip(
            "func @f(%x: i32, %n: i32) {
  %c = cmp lt %x, %n
  %r = if %c {
    yield %x
  } else {
    yield %n
  }
  %w = while (%a = %r) {
    %cc = cmp lt %a, %n
    condition %cc, %a
  } do (%bv) {
    %c1 = const 1 : i32
    %nx = add %bv, %c1 : i32
    yield %nx
  }
  return %w
}",
        );
    }

    #[test]
    fn round_trips_alternatives() {
        round_trip(
            "func @k(%g: index) {
  alternatives {
  case {
    yield
  }
  case {
    yield
  }
  }
  return
}",
        );
    }

    #[test]
    fn parses_module_with_calls() {
        let m = parse_module(
            "func @helper(%x: f32) {\n  return %x\n}\nfunc @main(%x: f32) {\n  %r = call @helper(%x) : (f32)\n  return %r\n}",
        )
        .unwrap();
        assert_eq!(m.len(), 2);
        crate::verify_module(&m).unwrap();
    }

    #[test]
    fn rejects_undefined_value() {
        let err = parse_function("func @f() { return %nope }").unwrap_err();
        assert!(err.message.contains("undefined value"));
    }

    #[test]
    fn rejects_unknown_op() {
        let err = parse_function("func @f() { frobnicate }").unwrap_err();
        assert!(err.message.contains("unknown operation"));
    }

    #[test]
    fn rejects_unterminated_memref() {
        assert!(parse_function("func @f(%m: memref<4xf32, global) { return }").is_err());
    }

    #[test]
    fn negative_and_exponent_literals() {
        round_trip("func @f() {\n  %a = const -5 : i32\n  %b = fconst -1.5e10 : f64\n  return\n}");
    }
}
