//! Structural content hashing for functions.
//!
//! The autotuner multi-versions a kernel over many coarsening
//! configurations; distinct configurations frequently canonicalize to the
//! same IR after cleanup (a factor of 1 in a dimension of extent 1, two
//! splits of the same total that collapse identically, …). A cheap content
//! hash lets the tuner detect such duplicates and compile/measure each
//! unique version exactly once. The tuning-service front-end additionally
//! uses the hash as its request-coalescing key, which puts it on the
//! daemon's admission path.
//!
//! The hash walks the IR structure directly — no text is materialized and
//! no per-op clones or name strings are allocated — but it encodes exactly
//! the information the canonical printer (see [`crate::print`]) would
//! emit, in the printer's traversal order, with the printer's dense
//! first-use value numbering. Two functions therefore hash equal iff their
//! printed forms are byte-identical, independent of internal arena ids;
//! `tests/hash_equiv_prop.rs` pins this equivalence property against a
//! print-and-hash reference. Collisions are possible in principle (64-bit
//! FNV) but the tuner only ever compares versions of *one* kernel, where
//! the candidate count is tiny.

use std::fmt::{self, Write};

use crate::ids::{RegionId, Value};
use crate::ops::{OpKind, Operation};
use crate::Function;

/// Version of the structural-hash scheme: the printer grammar plus the
/// byte-stream encoding below. Bump whenever either changes so persisted
/// artifacts keyed by a structural hash (the on-disk tuning cache) are
/// invalidated instead of silently matching stale content.
///
/// Version history: 1 streamed the printed text through FNV-1a; 2 encodes
/// the same structure directly (tags + dense value numbers + attribute
/// fields), skipping the printer.
pub const STRUCTURAL_HASH_VERSION: u32 = 2;

/// Streaming FNV-1a 64-bit hasher over an explicit byte encoding.
///
/// This is the one hash primitive persisted artifacts are allowed to use:
/// it has no dependence on `std::hash` (whose output is explicitly not
/// stable across Rust releases or platforms), so a key computed today
/// matches a key computed by any future build of the same
/// [`STRUCTURAL_HASH_VERSION`].
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// Creates a hasher with the standard FNV-1a offset basis.
    pub fn new() -> StableHasher {
        StableHasher {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.state ^= u64::from(*b);
            self.state = self.state.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Feeds a string's UTF-8 bytes followed by a NUL separator, so
    /// adjacent strings cannot collide by concatenation.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        self.write_bytes(&[0]);
    }

    /// Feeds a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `i64` as little-endian bytes.
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern (bit-exact, so `-0.0`
    /// and `0.0` hash differently — keys must be bit-stable, not
    /// numerically fuzzy).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The 64-bit digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Write for StableHasher {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

/// Hashes a function's structure directly, without printing it.
///
/// Two functions hash equal iff their [`Display`](std::fmt::Display)
/// renderings are byte-identical, independent of internal arena ids: the
/// walk below visits values in exactly the order the printer names them
/// and feeds the same attribute content the printer renders, so the
/// printer's dense `%0, %1, …` renumbering is reproduced as dense integer
/// numbers without allocating any text.
pub fn structural_hash(func: &Function) -> u64 {
    let mut w = HashWalker {
        func,
        hasher: StableHasher::new(),
        numbers: vec![u32::MAX; func.num_values()],
        next: 0,
    };
    w.hasher.write_str("func");
    w.hasher.write_str(func.name());
    let params = func.params();
    w.hasher.write_u64(params.len() as u64);
    for &p in params {
        w.value(p);
        w.ty_of(p);
    }
    w.region(func.body());
    w.hasher.finish()
}

/// The structural walker: mirrors the printer's traversal exactly.
///
/// Every `value()` call below corresponds 1:1, in order, to a `name()`
/// call in [`crate::print`]; every attribute write corresponds to a piece
/// of printed text. Keeping that correspondence is what preserves the
/// "hash equal ⟺ print equal" contract — when the printer grammar
/// changes, this walk must change with it (and
/// [`STRUCTURAL_HASH_VERSION`] must be bumped).
struct HashWalker<'f> {
    func: &'f Function,
    hasher: StableHasher,
    /// Dense printer-order number per value (indexed by arena id);
    /// `u32::MAX` = not yet named.
    numbers: Vec<u32>,
    next: u32,
}

impl HashWalker<'_> {
    /// Names a value in printer order and feeds its dense number.
    fn value(&mut self, v: Value) {
        let slot = &mut self.numbers[v.index()];
        if *slot == u32::MAX {
            *slot = self.next;
            self.next += 1;
        }
        let n = *slot;
        self.hasher.write_u64(u64::from(n));
    }

    /// Feeds a value list: length, then each dense number.
    fn values(&mut self, vs: &[Value]) {
        self.hasher.write_u64(vs.len() as u64);
        for &v in vs {
            self.value(v);
        }
    }

    /// Feeds something by its `Display` rendering plus a NUL separator —
    /// used for types and parallel levels, whose printed text is their
    /// identity.
    fn display(&mut self, d: impl fmt::Display) {
        write!(self.hasher, "{d}").expect("hash writer is infallible");
        self.hasher.write_bytes(&[0]);
    }

    /// Feeds the type of a value (what the printer renders after `:`).
    fn ty_of(&mut self, v: Value) {
        self.display(self.func.value_type(v));
    }

    /// Feeds a region body op by op, in order.
    fn region(&mut self, region: RegionId) {
        let func = self.func;
        let ops = &func.region(region).ops;
        self.hasher.write_u64(ops.len() as u64);
        for &op in ops {
            self.op(func.op(op));
        }
    }

    fn op(&mut self, op: &Operation) {
        match &op.kind {
            OpKind::ConstInt { value, ty } => {
                self.hasher.write_str("const");
                self.values(&op.results);
                self.hasher.write_i64(*value);
                self.display(ty);
            }
            OpKind::ConstFloat { value, ty } => {
                self.hasher.write_str("fconst");
                self.values(&op.results);
                // The printer renders floats with `{:?}`; hashing that
                // rendering (not the bit pattern) keeps print-equality:
                // e.g. all NaN payloads print — and must hash — the same.
                write!(self.hasher, "{value:?}").expect("hash writer is infallible");
                self.hasher.write_bytes(&[0]);
                self.display(ty);
            }
            OpKind::Binary(b) => {
                self.hasher.write_str(b.mnemonic());
                self.values(&op.results);
                self.values(&op.operands);
                self.ty_of(op.results[0]);
            }
            OpKind::Unary(u) => {
                self.hasher.write_str(u.mnemonic());
                self.values(&op.results);
                self.values(&op.operands);
                self.ty_of(op.results[0]);
            }
            OpKind::Cmp(p) => {
                self.hasher.write_str("cmp");
                self.hasher.write_str(p.mnemonic());
                self.values(&op.results);
                self.values(&op.operands);
            }
            OpKind::Select => {
                self.hasher.write_str("select");
                self.values(&op.results);
                self.values(&op.operands);
                self.ty_of(op.results[0]);
            }
            OpKind::Cast { to } => {
                self.hasher.write_str("cast");
                self.values(&op.results);
                self.values(&op.operands);
                self.display(to);
            }
            // The printer renders the address space only through the result
            // memref type, so the `space` attribute itself must not be
            // hashed separately.
            OpKind::Alloc { .. } => {
                self.hasher.write_str("alloc");
                self.values(&op.results);
                self.values(&op.operands);
                self.ty_of(op.results[0]);
            }
            OpKind::Load => {
                self.hasher.write_str("load");
                self.values(&op.results);
                self.value(op.operands[0]);
                self.values(&op.operands[1..]);
                self.ty_of(op.results[0]);
            }
            OpKind::Store => {
                self.hasher.write_str("store");
                self.value(op.operands[0]);
                self.value(op.operands[1]);
                self.values(&op.operands[2..]);
            }
            OpKind::Dim { index } => {
                self.hasher.write_str("dim");
                self.values(&op.results);
                self.value(op.operands[0]);
                self.hasher.write_u64(*index as u64);
            }
            OpKind::For => {
                self.hasher.write_str("for");
                self.values(&op.results);
                let func = self.func;
                let region = op.regions[0];
                let args = &func.region(region).args;
                // Printer order: induction variable, lb, ub, step, then
                // iter pairs (region arg, then its init operand).
                self.value(args[0]);
                self.value(op.operands[0]);
                self.value(op.operands[1]);
                self.value(op.operands[2]);
                self.hasher.write_u64((args.len() - 1) as u64);
                for (i, &arg) in args.iter().enumerate().skip(1) {
                    self.value(arg);
                    self.value(op.operands[2 + i]);
                }
                self.region(region);
            }
            OpKind::While => {
                self.hasher.write_str("while");
                self.values(&op.results);
                let func = self.func;
                let cond_region = op.regions[0];
                let body_region = op.regions[1];
                // Printer order: (cond arg = init) pairs, the condition
                // region body, the body-region args, the body region.
                let cond_args = &func.region(cond_region).args;
                self.hasher.write_u64(cond_args.len() as u64);
                for (&arg, &init) in cond_args.iter().zip(&op.operands) {
                    self.value(arg);
                    self.value(init);
                }
                self.region(cond_region);
                let body_args = &func.region(body_region).args;
                self.hasher.write_u64(body_args.len() as u64);
                for &arg in body_args.iter() {
                    self.value(arg);
                }
                self.region(body_region);
            }
            OpKind::If => {
                self.hasher.write_str("if");
                self.values(&op.results);
                self.value(op.operands[0]);
                self.region(op.regions[0]);
                let else_region = op.regions[1];
                // The printer skips a trivial `else { yield }` arm — its
                // content is not part of the canonical text, so it must not
                // be part of the hash either. (The printer's condition is
                // purely the op count, mirrored here verbatim.)
                let trivial_else =
                    op.results.is_empty() && self.func.region(else_region).ops.len() == 1;
                if trivial_else {
                    self.hasher.write_bytes(&[0]);
                } else {
                    self.hasher.write_bytes(&[1]);
                    self.region(else_region);
                }
            }
            OpKind::Parallel { level } => {
                self.hasher.write_str("parallel");
                self.display(level);
                let region = op.regions[0];
                let args = &self.func.region(region).args;
                self.hasher.write_u64(args.len() as u64);
                for &arg in args.iter() {
                    self.value(arg);
                }
                self.values(&op.operands);
                self.region(region);
            }
            OpKind::Barrier { level } => {
                self.hasher.write_str("barrier");
                self.display(level);
            }
            OpKind::Yield => {
                self.hasher.write_str("yield");
                self.values(&op.operands);
            }
            OpKind::Condition => {
                self.hasher.write_str("condition");
                self.values(&op.operands);
            }
            OpKind::Alternatives { selected } => {
                self.hasher.write_str("alternatives");
                match selected {
                    Some(i) => {
                        self.hasher.write_bytes(&[1]);
                        self.hasher.write_u64(*i as u64);
                    }
                    None => self.hasher.write_bytes(&[0]),
                }
                self.hasher.write_u64(op.regions.len() as u64);
                for &region in &op.regions {
                    self.region(region);
                }
            }
            OpKind::Call { callee } => {
                self.hasher.write_str("call");
                self.values(&op.results);
                self.hasher.write_str(callee);
                self.values(&op.operands);
                for &r in &op.results {
                    self.ty_of(r);
                }
            }
            OpKind::Return => {
                self.hasher.write_str("return");
                self.values(&op.operands);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_function;

    const KERNEL: &str = "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c64 = const 64 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c64, %c1, %c1) {
      %w = mul %bx, %c64 : index
      %i = add %w, %tx : index
      %v = load %m[%i] : f32
      %d = add %v, %v : f32
      store %d, %m[%i]
      yield
    }
    yield
  }
  return
}";

    /// The version-1 reference: hash of the canonical printed text. The
    /// direct walk must agree with it on *equality* (not on digests).
    fn print_hash(func: &Function) -> u64 {
        let mut w = StableHasher::new();
        use std::fmt::Write as _;
        write!(w, "{func}").expect("hash writer is infallible");
        w.finish()
    }

    #[test]
    fn identical_functions_hash_equal() {
        let a = parse_function(KERNEL).unwrap();
        let b = parse_function(KERNEL).unwrap();
        assert_eq!(structural_hash(&a), structural_hash(&b));
        assert_eq!(structural_hash(&a), structural_hash(&a.clone()));
    }

    #[test]
    fn hash_matches_printed_form_equality() {
        let a = parse_function(KERNEL).unwrap();
        // Re-parsing the printed form renumbers the arena from scratch; the
        // hash must not see the difference.
        let b = parse_function(&a.to_string()).unwrap();
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn different_bodies_hash_differently() {
        let a = parse_function(KERNEL).unwrap();
        let b = parse_function(&KERNEL.replace("add %v, %v", "mul %v, %v")).unwrap();
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn name_participates_in_the_hash() {
        let a = parse_function(KERNEL).unwrap();
        let b = parse_function(&KERNEL.replace("@k", "@k2")).unwrap();
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn direct_hash_tracks_print_hash_equality() {
        // Spot equivalence check (the proptest in tests/ is the real pin):
        // equal prints ⟹ equal direct hashes, different prints ⟹
        // different direct hashes, on a kernel that exercises nesting.
        let a = parse_function(KERNEL).unwrap();
        let b = parse_function(&a.to_string()).unwrap();
        let c = parse_function(&KERNEL.replace("add %w, %tx", "mul %w, %tx")).unwrap();
        assert_eq!(print_hash(&a), print_hash(&b));
        assert_eq!(structural_hash(&a), structural_hash(&b));
        assert_ne!(print_hash(&a), print_hash(&c));
        assert_ne!(structural_hash(&a), structural_hash(&c));
    }

    #[test]
    fn stable_hasher_digests_are_pinned() {
        // Golden digests: these values are part of the on-disk cache-key
        // contract. If this test fails, the encoding changed — bump
        // STRUCTURAL_HASH_VERSION rather than updating the constants.
        let mut h = StableHasher::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write_str("respec");
        h.write_u64(7);
        h.write_i64(-3);
        h.write_f64(1.5);
        assert_eq!(h.finish(), 0xb672_b7d8_e150_77b9);
        assert_eq!(STRUCTURAL_HASH_VERSION, 2);
    }

    #[test]
    fn string_separator_prevents_concatenation_collisions() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
