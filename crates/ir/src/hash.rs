//! Structural content hashing for functions.
//!
//! The autotuner multi-versions a kernel over many coarsening
//! configurations; distinct configurations frequently canonicalize to the
//! same IR after cleanup (a factor of 1 in a dimension of extent 1, two
//! splits of the same total that collapse identically, …). A cheap content
//! hash lets the tuner detect such duplicates and compile/measure each
//! unique version exactly once.
//!
//! The hash streams the canonical printed form (see [`crate::print`])
//! through FNV-1a without materializing the text. Because the printer
//! renumbers values densely in order of first definition, the hash is
//! invariant to arena layout: two functions that print identically — even
//! if their internal value/op ids differ after independent transform
//! histories — hash identically. Collisions are possible in principle
//! (64-bit FNV) but the tuner only ever compares versions of *one* kernel,
//! where the candidate count is tiny.

use std::fmt::{self, Write};

use crate::Function;

/// Version of the structural-hash scheme: the printer grammar plus the
/// byte-stream encoding below. Bump whenever either changes so persisted
/// artifacts keyed by a structural hash (the on-disk tuning cache) are
/// invalidated instead of silently matching stale content.
pub const STRUCTURAL_HASH_VERSION: u32 = 1;

/// Streaming FNV-1a 64-bit hasher over an explicit byte encoding.
///
/// This is the one hash primitive persisted artifacts are allowed to use:
/// it has no dependence on `std::hash` (whose output is explicitly not
/// stable across Rust releases or platforms), so a key computed today
/// matches a key computed by any future build of the same
/// [`STRUCTURAL_HASH_VERSION`].
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// Creates a hasher with the standard FNV-1a offset basis.
    pub fn new() -> StableHasher {
        StableHasher {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.state ^= u64::from(*b);
            self.state = self.state.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Feeds a string's UTF-8 bytes followed by a NUL separator, so
    /// adjacent strings cannot collide by concatenation.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        self.write_bytes(&[0]);
    }

    /// Feeds a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `i64` as little-endian bytes.
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern (bit-exact, so `-0.0`
    /// and `0.0` hash differently — keys must be bit-stable, not
    /// numerically fuzzy).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The 64-bit digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Write for StableHasher {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

/// Hashes a function's canonical printed form.
///
/// Two functions hash equal iff their [`Display`](std::fmt::Display)
/// renderings are byte-identical, independent of internal arena ids.
pub fn structural_hash(func: &Function) -> u64 {
    let mut w = StableHasher::new();
    write!(w, "{func}").expect("hash writer is infallible");
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_function;

    const KERNEL: &str = "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c64 = const 64 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c64, %c1, %c1) {
      %w = mul %bx, %c64 : index
      %i = add %w, %tx : index
      %v = load %m[%i] : f32
      %d = add %v, %v : f32
      store %d, %m[%i]
      yield
    }
    yield
  }
  return
}";

    #[test]
    fn identical_functions_hash_equal() {
        let a = parse_function(KERNEL).unwrap();
        let b = parse_function(KERNEL).unwrap();
        assert_eq!(structural_hash(&a), structural_hash(&b));
        assert_eq!(structural_hash(&a), structural_hash(&a.clone()));
    }

    #[test]
    fn hash_matches_printed_form_equality() {
        let a = parse_function(KERNEL).unwrap();
        // Re-parsing the printed form renumbers the arena from scratch; the
        // hash must not see the difference.
        let b = parse_function(&a.to_string()).unwrap();
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn different_bodies_hash_differently() {
        let a = parse_function(KERNEL).unwrap();
        let b = parse_function(&KERNEL.replace("add %v, %v", "mul %v, %v")).unwrap();
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn name_participates_in_the_hash() {
        let a = parse_function(KERNEL).unwrap();
        let b = parse_function(&KERNEL.replace("@k", "@k2")).unwrap();
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn stable_hasher_digests_are_pinned() {
        // Golden digests: these values are part of the on-disk cache-key
        // contract. If this test fails, the encoding changed — bump
        // STRUCTURAL_HASH_VERSION rather than updating the constants.
        let mut h = StableHasher::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write_str("respec");
        h.write_u64(7);
        h.write_i64(-3);
        h.write_f64(1.5);
        assert_eq!(h.finish(), 0xb672_b7d8_e150_77b9);
        assert_eq!(STRUCTURAL_HASH_VERSION, 1);
    }

    #[test]
    fn string_separator_prevents_concatenation_collisions() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
