//! Structural content hashing for functions.
//!
//! The autotuner multi-versions a kernel over many coarsening
//! configurations; distinct configurations frequently canonicalize to the
//! same IR after cleanup (a factor of 1 in a dimension of extent 1, two
//! splits of the same total that collapse identically, …). A cheap content
//! hash lets the tuner detect such duplicates and compile/measure each
//! unique version exactly once.
//!
//! The hash streams the canonical printed form (see [`crate::print`])
//! through FNV-1a without materializing the text. Because the printer
//! renumbers values densely in order of first definition, the hash is
//! invariant to arena layout: two functions that print identically — even
//! if their internal value/op ids differ after independent transform
//! histories — hash identically. Collisions are possible in principle
//! (64-bit FNV) but the tuner only ever compares versions of *one* kernel,
//! where the candidate count is tiny.

use std::fmt::{self, Write};

use crate::Function;

/// Streaming FNV-1a 64-bit hasher fed by the IR printer.
struct HashWriter {
    state: u64,
}

impl Write for HashWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for b in s.bytes() {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x100_0000_01b3);
        }
        Ok(())
    }
}

/// Hashes a function's canonical printed form.
///
/// Two functions hash equal iff their [`Display`](std::fmt::Display)
/// renderings are byte-identical, independent of internal arena ids.
pub fn structural_hash(func: &Function) -> u64 {
    let mut w = HashWriter {
        state: 0xcbf2_9ce4_8422_2325,
    };
    write!(w, "{func}").expect("hash writer is infallible");
    w.state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_function;

    const KERNEL: &str = "func @k(%gx: index, %gy: index, %gz: index, %m: memref<?xf32, global>) {
  %c64 = const 64 : index
  %c1 = const 1 : index
  parallel<block> (%bx, %by, %bz) to (%gx, %gy, %gz) {
    parallel<thread> (%tx, %ty, %tz) to (%c64, %c1, %c1) {
      %w = mul %bx, %c64 : index
      %i = add %w, %tx : index
      %v = load %m[%i] : f32
      %d = add %v, %v : f32
      store %d, %m[%i]
      yield
    }
    yield
  }
  return
}";

    #[test]
    fn identical_functions_hash_equal() {
        let a = parse_function(KERNEL).unwrap();
        let b = parse_function(KERNEL).unwrap();
        assert_eq!(structural_hash(&a), structural_hash(&b));
        assert_eq!(structural_hash(&a), structural_hash(&a.clone()));
    }

    #[test]
    fn hash_matches_printed_form_equality() {
        let a = parse_function(KERNEL).unwrap();
        // Re-parsing the printed form renumbers the arena from scratch; the
        // hash must not see the difference.
        let b = parse_function(&a.to_string()).unwrap();
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn different_bodies_hash_differently() {
        let a = parse_function(KERNEL).unwrap();
        let b = parse_function(&KERNEL.replace("add %v, %v", "mul %v, %v")).unwrap();
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn name_participates_in_the_hash() {
        let a = parse_function(KERNEL).unwrap();
        let b = parse_function(&KERNEL.replace("@k", "@k2")).unwrap();
        assert_ne!(structural_hash(&a), structural_hash(&b));
    }
}
