//! Integration tests for the trace recorder: nested spans, cross-thread
//! recording, and the shape of both exporters.

use std::thread;

use respec_trace::{json, EventKind, MetricValue, Trace};

#[test]
fn nested_spans_record_in_close_order_with_containment() {
    let trace = Trace::new();
    {
        let mut outer = trace.span("compile", "outer");
        outer.record("phase", "all");
        {
            let mut inner = trace.span("pass", "inner");
            inner.record("rewrites", 3i64);
        }
        {
            let _inner2 = trace.span("pass", "inner2");
        }
    }
    let events = trace.events();
    // Spans record at close, so children precede the parent.
    let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["inner", "inner2", "outer"]);
    let inner = &events[0];
    let inner2 = &events[1];
    let outer = &events[2];
    // The parent's interval contains both children.
    assert!(outer.t_ns <= inner.t_ns);
    assert!(inner.t_ns + inner.dur_ns <= outer.t_ns + outer.dur_ns);
    assert!(inner.t_ns + inner.dur_ns <= inner2.t_ns);
    assert_eq!(outer.metric("phase").and_then(|m| m.as_str()), Some("all"));
    assert_eq!(inner.metric("rewrites"), Some(&MetricValue::Int(3)));
}

#[test]
fn cross_thread_recording_collects_everything_with_distinct_tids() {
    let trace = Trace::new();
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let t = trace.clone();
            thread::spawn(move || {
                for j in 0..8 {
                    let mut span = t.span("worker", format!("work:{i}:{j}"));
                    span.record("iteration", j as i64);
                }
                t.counter("worker", format!("done:{i}"), 1u64);
            })
        })
        .collect();
    for th in threads {
        th.join().unwrap();
    }
    let events = trace.events();
    assert_eq!(events.len(), 4 * 9, "8 spans + 1 counter per thread");
    // Each spawned thread got its own dense tid.
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), 4, "one tid per recording thread");
    // Every event made it, attributed to exactly one thread.
    for i in 0..4 {
        let of_thread: Vec<_> = events
            .iter()
            .filter(|e| e.name.starts_with(&format!("work:{i}:")) || e.name == format!("done:{i}"))
            .collect();
        assert_eq!(of_thread.len(), 9);
        assert!(of_thread.iter().all(|e| e.tid == of_thread[0].tid));
    }
}

#[test]
fn chrome_trace_has_the_expected_shape() {
    let trace = Trace::new();
    {
        let mut s = trace.span("pass", "pass:cse");
        s.record("rewrites", 2i64);
        s.record("note", "a \"quoted\" string\nwith newline");
    }
    trace.instant("tune", "candidate", &[("pruned".into(), true.into())]);
    trace.counter("sim", "sectors", 128u64);

    let out = trace.chrome_trace();
    json::validate(&out).expect("valid JSON document");
    assert!(out.starts_with("{\"traceEvents\":["));
    assert!(out.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    // One phase letter per event kind.
    assert!(
        out.contains("\"ph\":\"X\""),
        "span becomes a complete event"
    );
    assert!(out.contains("\"ph\":\"i\""), "instant event");
    assert!(out.contains("\"ph\":\"C\""), "counter event");
    assert!(out.contains("\"name\":\"pass:cse\""));
    assert!(out.contains("\"cat\":\"pass\""));
    assert!(out.contains("\"rewrites\":2"));
    assert!(out.contains("\"pruned\":true"));
    // Escaping survives the round trip.
    assert!(out.contains("a \\\"quoted\\\" string\\nwith newline"));
    // Spans carry a duration; all events a pid/tid.
    assert!(out.contains("\"dur\":"));
    assert!(out.contains("\"pid\":1"));
}

#[test]
fn json_lines_emits_one_valid_object_per_event() {
    let trace = Trace::new();
    {
        let _s = trace.span("pass", "pass:dce");
    }
    trace.instant("tune", "winner", &[("seconds".into(), 1.5f64.into())]);
    trace.counter("sim", "hits", 7u64);

    let out = trace.json_lines();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3);
    for line in &lines {
        json::validate(line).expect("each line is a standalone JSON object");
    }
    assert!(lines[0].contains("\"kind\":\"span\""));
    assert!(lines[0].contains("\"dur_ns\":"));
    assert!(lines[1].contains("\"kind\":\"instant\""));
    assert!(lines[1].contains("\"seconds\":1.5"));
    assert!(lines[2].contains("\"kind\":\"counter\""));
    assert!(lines[2].contains("\"value\":7"));
}

#[test]
fn exporters_are_empty_but_valid_on_an_empty_trace() {
    let trace = Trace::new();
    json::validate(&trace.chrome_trace()).unwrap();
    assert_eq!(trace.json_lines(), "");
}

#[test]
fn summary_aggregates_across_threads() {
    let trace = Trace::new();
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let t = trace.clone();
            thread::spawn(move || {
                let _s = t.span("pass", "pass:cse");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let summary = trace.summary();
    let stat = summary.span("pass:cse").expect("aggregated");
    assert_eq!(stat.count, 3);
    assert!(stat.total_ns >= stat.max_ns);
}

#[test]
fn span_close_is_equivalent_to_drop() {
    let trace = Trace::new();
    let mut s = trace.span("pass", "pass:x");
    s.record("k", 1i64);
    s.close();
    assert_eq!(trace.len(), 1);
    assert_eq!(trace.events()[0].kind, EventKind::Span);
}

#[test]
fn scoped_worker_threads_record_every_event_with_distinct_tids() {
    // The tuning engine records backend/measure spans from scoped pool
    // workers while the main thread holds the tune span: all events must
    // land in the shared buffer, tagged with their recording thread.
    let trace = Trace::new();
    let outer = trace.span("tune", "tune:pool");
    thread::scope(|scope| {
        for w in 0..4 {
            let t = trace.clone();
            scope.spawn(move || {
                for i in 0..8 {
                    let mut s = t.span("tune", "backend");
                    s.record("worker", w as i64);
                    s.record("item", i as i64);
                    drop(s);
                    t.instant("tune", "candidate", &[("worker".into(), (w as i64).into())]);
                }
            });
        }
    });
    drop(outer);
    let events = trace.events();
    assert_eq!(
        events.iter().filter(|e| e.name == "backend").count(),
        32,
        "no worker event is lost"
    );
    assert_eq!(events.iter().filter(|e| e.name == "candidate").count(), 32);
    assert_eq!(events.iter().filter(|e| e.name == "tune:pool").count(), 1);
    let tids: std::collections::HashSet<u64> = events.iter().map(|e| e.tid).collect();
    assert!(
        tids.len() >= 2,
        "worker threads get their own tids (got {tids:?})"
    );
    // The exporters stay valid on a multi-threaded stream.
    json::validate(&trace.chrome_trace()).unwrap();
    for line in trace.json_lines().lines() {
        json::validate(line).unwrap();
    }
}
