//! Aggregated views over an event stream: per-span-name timing statistics
//! and category counts, the raw material for the `respec` facade's
//! `TraceReport`.

use std::collections::BTreeMap;
use std::fmt;

use crate::{EventKind, MetricValue, TraceEvent};

/// Aggregate of every span with the same name.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Category of the first occurrence.
    pub category: &'static str,
    /// Number of spans with this name.
    pub count: u64,
    /// Total duration over all occurrences, nanoseconds.
    pub total_ns: u64,
    /// Longest single occurrence, nanoseconds.
    pub max_ns: u64,
}

/// Aggregated statistics over one recorded event stream.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Per-name span statistics, sorted by descending total time.
    pub spans: Vec<SpanStat>,
    /// Instant-event counts per name (sorted by name).
    pub instants: Vec<(String, u64)>,
    /// Total number of recorded events of any kind.
    pub events: usize,
    /// Persistent-cache lookups that hit, tallied from `cache_lookup`
    /// instants in the `cache` category.
    pub cache_hits: u64,
    /// Persistent-cache lookups that missed (including stale entries).
    pub cache_misses: u64,
    /// Stale persistent-cache entries demoted to misses (version bump,
    /// truncation, corruption).
    pub cache_invalidations: u64,
}

impl TraceSummary {
    /// Builds a summary from an event snapshot.
    pub fn from_events(events: &[TraceEvent]) -> TraceSummary {
        let mut spans: BTreeMap<String, SpanStat> = BTreeMap::new();
        let mut instants: BTreeMap<String, u64> = BTreeMap::new();
        let (mut cache_hits, mut cache_misses, mut cache_invalidations) = (0, 0, 0);
        for ev in events {
            if ev.kind == EventKind::Instant && ev.category == "cache" && ev.name == "cache_lookup"
            {
                match lookup_outcome(ev) {
                    Some("hit") => cache_hits += 1,
                    Some("miss") => cache_misses += 1,
                    Some("stale") => {
                        cache_misses += 1;
                        cache_invalidations += 1;
                    }
                    _ => {}
                }
            }
            match ev.kind {
                EventKind::Span => {
                    let stat = spans.entry(ev.name.clone()).or_insert_with(|| SpanStat {
                        name: ev.name.clone(),
                        category: ev.category,
                        count: 0,
                        total_ns: 0,
                        max_ns: 0,
                    });
                    stat.count += 1;
                    stat.total_ns += ev.dur_ns;
                    stat.max_ns = stat.max_ns.max(ev.dur_ns);
                }
                EventKind::Instant => *instants.entry(ev.name.clone()).or_insert(0) += 1,
                EventKind::Counter => {}
            }
        }
        let mut spans: Vec<SpanStat> = spans.into_values().collect();
        spans.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then_with(|| a.name.cmp(&b.name))
        });
        TraceSummary {
            spans,
            instants: instants.into_iter().collect(),
            events: events.len(),
            cache_hits,
            cache_misses,
            cache_invalidations,
        }
    }

    /// Looks up the statistics of one span name.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Count of instant events with the given name.
    pub fn instant_count(&self, name: &str) -> u64 {
        self.instants
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }
}

/// The `outcome` metric of one `cache_lookup` instant, if present.
fn lookup_outcome(ev: &TraceEvent) -> Option<&str> {
    ev.metrics.iter().find_map(|(k, v)| match v {
        MetricValue::Str(s) if k == "outcome" => Some(s.as_str()),
        _ => None,
    })
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} events recorded", self.events)?;
        if !self.spans.is_empty() {
            writeln!(
                f,
                "{:<32} {:>8} {:>12} {:>12}",
                "span", "count", "total(ms)", "max(ms)"
            )?;
            for s in &self.spans {
                writeln!(
                    f,
                    "{:<32} {:>8} {:>12.3} {:>12.3}",
                    s.name,
                    s.count,
                    s.total_ns as f64 / 1e6,
                    s.max_ns as f64 / 1e6
                )?;
            }
        }
        for (name, count) in &self.instants {
            writeln!(f, "instant {name:<24} x{count}")?;
        }
        if self.cache_hits + self.cache_misses > 0 {
            writeln!(
                f,
                "cache: {} hits, {} misses ({} invalidations)",
                self.cache_hits, self.cache_misses, self.cache_invalidations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::Trace;

    #[test]
    fn summary_aggregates_spans_by_name() {
        let t = Trace::new();
        for i in 0..3 {
            let mut s = t.span("pass", "pass:cse");
            s.record("i", i as i64);
        }
        t.span("pass", "pass:dce").close();
        t.instant("tune", "pruned", &[]);
        t.instant("tune", "pruned", &[]);
        let sum = t.summary();
        assert_eq!(sum.events, 6);
        assert_eq!(sum.span("pass:cse").unwrap().count, 3);
        assert_eq!(sum.span("pass:dce").unwrap().count, 1);
        assert_eq!(sum.instant_count("pruned"), 2);
        let text = sum.to_string();
        assert!(text.contains("pass:cse"));
        assert!(text.contains("x2"));
    }

    #[test]
    fn summary_tallies_cache_lookups_by_outcome() {
        let t = Trace::new();
        t.cache_lookup("winner", "miss", "");
        t.cache_lookup("report", "hit", "");
        t.cache_lookup("report", "stale", "format version 0 != 1");
        let sum = t.summary();
        assert_eq!(sum.cache_hits, 1);
        assert_eq!(sum.cache_misses, 2, "stale counts as a miss too");
        assert_eq!(sum.cache_invalidations, 1);
        assert_eq!(sum.instant_count("cache_lookup"), 3);
        assert!(sum
            .to_string()
            .contains("cache: 1 hits, 2 misses (1 invalidations)"));
    }
}
