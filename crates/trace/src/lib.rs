//! # respec-trace — pipeline-wide observability
//!
//! The paper's whole argument rests on *feedback*: alternatives are pruned
//! with backend register/spill signals, winners are picked by timing-driven
//! optimization (§VI), and the evaluation explains speedups with profiled
//! hardware counters (Table II). This crate records the story of those
//! decisions as a structured event stream:
//!
//! * **Spans** — RAII guards measuring wall time of a named phase
//!   (`trace.span("pass", "pass:cse")`), with arbitrary key/value metrics
//!   attached before the guard drops.
//! * **Instants** — point events (a pruned alternative, a selected winner).
//! * **Counters** — named numeric samples.
//!
//! A [`Trace`] handle is cheap to clone and thread-safe; every pipeline
//! layer takes one. [`Trace::disabled`] is a no-op handle: recording costs
//! one branch on a `None`, so instrumented hot paths stay hot. Tracing is
//! strictly observational — a traced and an untraced run produce identical
//! IR and identical simulated timings (enforced by a property test in the
//! `respec` facade).
//!
//! Two exporters ship with the recorder:
//!
//! * [`Trace::chrome_trace`] — the Chrome trace-event JSON format; open the
//!   file in `chrome://tracing` or <https://ui.perfetto.dev>.
//! * [`Trace::json_lines`] — one JSON object per event, for `jq`-style
//!   post-processing and perf-trajectory tracking across commits.
//!
//! ```
//! use respec_trace::Trace;
//!
//! let trace = Trace::new();
//! {
//!     let mut span = trace.span("pass", "pass:cse");
//!     span.record("rewrites", 3i64);
//! } // span closes here
//! trace.instant("tune", "pruned", &[("reason".into(), "spill".into())]);
//! assert_eq!(trace.events().len(), 2);
//! let json = trace.chrome_trace();
//! respec_trace::json::validate(&json).expect("exporter emits valid JSON");
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod json;
mod report;

pub use report::{SpanStat, TraceSummary};

// ---------------------------------------------------------------------------
// Values and events
// ---------------------------------------------------------------------------

/// A metric value attached to an event.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl MetricValue {
    /// Numeric view (integers widened, strings/bools `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            MetricValue::Int(v) => Some(*v as f64),
            MetricValue::UInt(v) => Some(*v as f64),
            MetricValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            MetricValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for MetricValue {
    fn from(v: i64) -> MetricValue {
        MetricValue::Int(v)
    }
}

impl From<i32> for MetricValue {
    fn from(v: i32) -> MetricValue {
        MetricValue::Int(v as i64)
    }
}

impl From<u64> for MetricValue {
    fn from(v: u64) -> MetricValue {
        MetricValue::UInt(v)
    }
}

impl From<u32> for MetricValue {
    fn from(v: u32) -> MetricValue {
        MetricValue::UInt(v as u64)
    }
}

impl From<usize> for MetricValue {
    fn from(v: usize) -> MetricValue {
        MetricValue::UInt(v as u64)
    }
}

impl From<f64> for MetricValue {
    fn from(v: f64) -> MetricValue {
        MetricValue::Float(v)
    }
}

impl From<bool> for MetricValue {
    fn from(v: bool) -> MetricValue {
        MetricValue::Bool(v)
    }
}

impl From<&str> for MetricValue {
    fn from(v: &str) -> MetricValue {
        MetricValue::Str(v.to_string())
    }
}

impl From<String> for MetricValue {
    fn from(v: String) -> MetricValue {
        MetricValue::Str(v)
    }
}

/// Key/value metric list attached to events.
pub type Metrics = Vec<(String, MetricValue)>;

/// What kind of record an event is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `t_ns` is the start, `dur_ns` the duration.
    Span,
    /// A point event.
    Instant,
    /// A numeric sample.
    Counter,
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Record kind.
    pub kind: EventKind,
    /// Event name (`pass:cse`, `candidate`, `launch:lud_diagonal`, …).
    pub name: String,
    /// Category (`pass`, `tune`, `sim`, …) — the Chrome trace `cat` field.
    pub category: &'static str,
    /// Start time in nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Duration in nanoseconds ([`EventKind::Span`] only).
    pub dur_ns: u64,
    /// Small dense id of the recording thread.
    pub tid: u64,
    /// Attached metrics.
    pub metrics: Metrics,
}

impl TraceEvent {
    /// Looks up a metric by key.
    pub fn metric(&self, key: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    next_tid: AtomicU64,
}

thread_local! {
    /// Dense per-(trace, thread) id, assigned on first record from a thread.
    static THREAD_TID: std::cell::RefCell<Vec<(usize, u64)>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// A cheaply clonable, thread-safe handle to one event stream.
///
/// `Trace::disabled()` carries no storage: every recording call reduces to
/// a branch on `None`, so instrumentation can stay in hot paths
/// unconditionally.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    inner: Option<Arc<Inner>>,
}

impl Trace {
    /// Creates an enabled, empty trace.
    pub fn new() -> Trace {
        Trace {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
                next_tid: AtomicU64::new(1),
            })),
        }
    }

    /// Creates a no-op handle: all recording calls do nothing.
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn now_ns(inner: &Inner) -> u64 {
        inner.epoch.elapsed().as_nanos() as u64
    }

    fn tid(inner: &Arc<Inner>) -> u64 {
        let key = Arc::as_ptr(inner) as usize;
        THREAD_TID.with(|map| {
            let mut map = map.borrow_mut();
            if let Some((_, tid)) = map.iter().find(|(k, _)| *k == key) {
                return *tid;
            }
            let tid = inner.next_tid.fetch_add(1, Ordering::Relaxed);
            map.push((key, tid));
            tid
        })
    }

    /// Opens a span; it records itself when the returned guard drops (or
    /// on [`Span::close`]). Use [`Span::record`] to attach metrics.
    pub fn span(&self, category: &'static str, name: impl Into<String>) -> Span {
        match &self.inner {
            None => Span { state: None },
            Some(inner) => Span {
                state: Some(SpanState {
                    inner: Arc::clone(inner),
                    name: name.into(),
                    category,
                    start_ns: Self::now_ns(inner),
                    metrics: Vec::new(),
                }),
            },
        }
    }

    /// Records a point event with metrics.
    pub fn instant(
        &self,
        category: &'static str,
        name: impl Into<String>,
        metrics: &[(String, MetricValue)],
    ) {
        if let Some(inner) = &self.inner {
            let ev = TraceEvent {
                kind: EventKind::Instant,
                name: name.into(),
                category,
                t_ns: Self::now_ns(inner),
                dur_ns: 0,
                tid: Self::tid(inner),
                metrics: metrics.to_vec(),
            };
            inner.events.lock().expect("trace lock").push(ev);
        }
    }

    /// Records one persistent-cache lookup as a `cache_lookup` instant in
    /// the `cache` category. `kind` names the entry class (`winner`,
    /// `report`), `outcome` is `hit`, `miss` or `stale`, and a non-empty
    /// `detail` — the staleness reason — is attached verbatim. These events
    /// feed the cache tallies in [`TraceSummary`].
    pub fn cache_lookup(&self, kind: &'static str, outcome: &'static str, detail: &str) {
        if self.inner.is_none() {
            return;
        }
        let mut metrics: Vec<(String, MetricValue)> = vec![
            ("kind".to_string(), kind.into()),
            ("outcome".to_string(), outcome.into()),
        ];
        if !detail.is_empty() {
            metrics.push(("detail".to_string(), detail.into()));
        }
        self.instant("cache", "cache_lookup", &metrics);
    }

    /// Records a numeric sample.
    pub fn counter(
        &self,
        category: &'static str,
        name: impl Into<String>,
        value: impl Into<MetricValue>,
    ) {
        if let Some(inner) = &self.inner {
            let ev = TraceEvent {
                kind: EventKind::Counter,
                name: name.into(),
                category,
                t_ns: Self::now_ns(inner),
                dur_ns: 0,
                tid: Self::tid(inner),
                metrics: vec![("value".to_string(), value.into())],
            };
            inner.events.lock().expect("trace lock").push(ev);
        }
    }

    /// Snapshot of all events recorded so far, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.events.lock().expect("trace lock").clone(),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => inner.events.lock().expect("trace lock").len(),
        }
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all recorded events (the handle stays enabled).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.events.lock().expect("trace lock").clear();
        }
    }

    /// Aggregated per-name statistics (see [`TraceSummary`]).
    pub fn summary(&self) -> TraceSummary {
        TraceSummary::from_events(&self.events())
    }

    /// Exports the Chrome trace-event JSON format (open in
    /// `chrome://tracing` or <https://ui.perfetto.dev>). Spans become `"X"`
    /// (complete) events; instants `"i"`; counters `"C"`.
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.events())
    }

    /// Exports one JSON object per event, newline-separated.
    pub fn json_lines(&self) -> String {
        json_lines(&self.events())
    }
}

fn push_event(state: &SpanState, end_ns: u64) {
    let ev = TraceEvent {
        kind: EventKind::Span,
        name: state.name.clone(),
        category: state.category,
        t_ns: state.start_ns,
        dur_ns: end_ns.saturating_sub(state.start_ns),
        tid: Trace::tid(&state.inner),
        metrics: state.metrics.clone(),
    };
    state.inner.events.lock().expect("trace lock").push(ev);
}

#[derive(Debug)]
struct SpanState {
    inner: Arc<Inner>,
    name: String,
    category: &'static str,
    start_ns: u64,
    metrics: Metrics,
}

/// RAII span guard; records a [`EventKind::Span`] event on drop.
#[derive(Debug)]
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// Whether this guard came from an enabled trace (use to skip expensive
    /// metric computation on disabled traces).
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// Attaches a metric to the span (no-op on a disabled trace).
    pub fn record(&mut self, key: impl Into<String>, value: impl Into<MetricValue>) {
        if let Some(state) = &mut self.state {
            state.metrics.push((key.into(), value.into()));
        }
    }

    /// Attaches several metrics at once.
    pub fn record_all(&mut self, metrics: &[(String, MetricValue)]) {
        if let Some(state) = &mut self.state {
            state.metrics.extend_from_slice(metrics);
        }
    }

    /// Closes the span now (equivalent to dropping it).
    pub fn close(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            let end = Trace::now_ns(&state.inner);
            push_event(&state, end);
        }
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

fn write_args(out: &mut String, metrics: &Metrics) {
    out.push('{');
    for (i, (k, v)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(out, k);
        out.push(':');
        match v {
            MetricValue::Int(x) => out.push_str(&x.to_string()),
            MetricValue::UInt(x) => out.push_str(&x.to_string()),
            MetricValue::Float(x) => json::write_f64(out, *x),
            MetricValue::Str(s) => json::write_str(out, s),
            MetricValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out.push('}');
}

/// Renders events as a Chrome trace-event JSON document.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::write_str(&mut out, &ev.name);
        out.push_str(",\"cat\":");
        json::write_str(&mut out, ev.category);
        let (ph, extra) = match ev.kind {
            EventKind::Span => ("X", true),
            EventKind::Instant => ("i", false),
            EventKind::Counter => ("C", false),
        };
        out.push_str(",\"ph\":\"");
        out.push_str(ph);
        out.push('"');
        // Chrome expects microsecond timestamps.
        out.push_str(",\"ts\":");
        json::write_f64(&mut out, ev.t_ns as f64 / 1e3);
        if extra {
            out.push_str(",\"dur\":");
            json::write_f64(&mut out, ev.dur_ns as f64 / 1e3);
        }
        if ev.kind == EventKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&ev.tid.to_string());
        out.push_str(",\"args\":");
        write_args(&mut out, &ev.metrics);
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders events as newline-separated JSON objects.
pub fn json_lines(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        out.push_str("{\"kind\":");
        json::write_str(
            &mut out,
            match ev.kind {
                EventKind::Span => "span",
                EventKind::Instant => "instant",
                EventKind::Counter => "counter",
            },
        );
        out.push_str(",\"name\":");
        json::write_str(&mut out, &ev.name);
        out.push_str(",\"cat\":");
        json::write_str(&mut out, ev.category);
        out.push_str(",\"t_ns\":");
        out.push_str(&ev.t_ns.to_string());
        if ev.kind == EventKind::Span {
            out.push_str(",\"dur_ns\":");
            out.push_str(&ev.dur_ns.to_string());
        }
        out.push_str(",\"tid\":");
        out.push_str(&ev.tid.to_string());
        out.push_str(",\"metrics\":");
        write_args(&mut out, &ev.metrics);
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_is_a_noop() {
        let t = Trace::disabled();
        let mut s = t.span("pass", "pass:test");
        s.record("k", 1i64);
        drop(s);
        t.instant("tune", "e", &[]);
        t.counter("sim", "c", 2u64);
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        assert_eq!(
            t.chrome_trace(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
        assert_eq!(t.json_lines(), "");
    }

    #[test]
    fn span_records_metrics_and_duration() {
        let t = Trace::new();
        {
            let mut s = t.span("pass", "pass:cse");
            s.record("rewrites", 5i64);
            s.record("label", "x");
        }
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::Span);
        assert_eq!(evs[0].name, "pass:cse");
        assert_eq!(evs[0].metric("rewrites"), Some(&MetricValue::Int(5)));
        assert_eq!(evs[0].metric("label").and_then(|m| m.as_str()), Some("x"));
    }

    #[test]
    fn clear_keeps_the_handle_enabled() {
        let t = Trace::new();
        t.counter("sim", "c", 1u64);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
        t.counter("sim", "c", 2u64);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clones_share_the_event_stream() {
        let t = Trace::new();
        let t2 = t.clone();
        t.instant("a", "one", &[]);
        t2.instant("b", "two", &[]);
        assert_eq!(t.len(), 2);
        assert_eq!(t2.len(), 2);
    }
}
