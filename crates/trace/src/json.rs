//! Dependency-free JSON helpers: string/number emission for the exporters,
//! a line-oriented writer for machine-readable benchmark rows, and a strict
//! syntax validator used by tests (and available to downstream tooling).

use std::fmt::Write as _;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite JSON number; non-finite values become `null` (JSON has
/// no NaN/Infinity).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(out, "{:.1}", v);
        } else {
            let _ = write!(out, "{}", v);
        }
    } else {
        out.push_str("null");
    }
}

/// Builder for one flat JSON object rendered on a single line — the row
/// format of the `--json` benchmark outputs.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    buf: String,
    fields: usize,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn key(&mut self, key: &str) {
        if self.fields > 0 {
            self.buf.push(',');
        }
        write_str(&mut self.buf, key);
        self.buf.push(':');
        self.fields += 1;
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonObject {
        self.key(key);
        write_str(&mut self.buf, value);
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64(mut self, key: &str, value: f64) -> JsonObject {
        self.key(key);
        write_f64(&mut self.buf, value);
        self
    }

    /// Adds an optional float field (`null` when absent or non-finite).
    pub fn opt_f64(mut self, key: &str, value: Option<f64>) -> JsonObject {
        self.key(key);
        match value {
            Some(v) => write_f64(&mut self.buf, v),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Adds an integer field.
    pub fn i64(mut self, key: &str, value: i64) -> JsonObject {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> JsonObject {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> JsonObject {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

// ---------------------------------------------------------------------------
// Parser / validator
// ---------------------------------------------------------------------------

/// Hard cap on JSON nesting depth. The parser is recursive-descent, so
/// without a bound a line of tens of thousands of `[` bytes would
/// overflow the caller's stack and abort the process; past this depth it
/// returns an error instead. No producer in this workspace nests deeper
/// than 2.
pub const MAX_JSON_DEPTH: usize = 64;

/// A parsed JSON value — the minimal tree the workspace's line-oriented
/// formats need (benchmark baselines, the serve wire protocol).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value (rejecting trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first syntax error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer, when it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Validates that `s` is one syntactically correct JSON value.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    Json::parse(s).map(|_| ())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth >= MAX_JSON_DEPTH {
        return Err(format!(
            "nesting exceeds {MAX_JSON_DEPTH} levels at byte {pos}"
        ));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null").map(|()| Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte '{}' at {}", *c as char, pos)),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if *pos + 4 >= b.len() {
                            return Err(format!("bad \\u escape at byte {pos}"));
                        }
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogates map to the replacement character; no
                        // producer in this workspace emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            0x00..=0x1f => return Err(format!("unescaped control byte at {pos}")),
            _ => {
                // Copy one UTF-8 scalar (the input came from a &str, so
                // boundaries are valid).
                let start = *pos;
                let len = utf8_len(b[start]);
                let chunk = std::str::from_utf8(&b[start..(start + len).min(b.len())])
                    .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit.as_bytes() {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number".to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_the_validator() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\te\u{1}");
        validate(&s).unwrap();
    }

    #[test]
    fn object_builder_emits_valid_rows() {
        let row = JsonObject::new()
            .str("app", "lud")
            .f64("speedup", 1.25)
            .opt_f64("missing", None)
            .i64("n", -3)
            .u64("blocks", 12)
            .bool("ok", true)
            .finish();
        validate(&row).unwrap();
        assert!(row.starts_with("{\"app\":\"lud\""));
        assert!(row.contains("\"missing\":null"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate("{\"a\":[1,2.5,-3e2,true,null,\"x\"]}").unwrap();
        assert!(validate("{").is_err());
        assert!(validate("{\"a\":}").is_err());
        assert!(validate("[1,]").is_err());
        assert!(validate("\"\\q\"").is_err());
        assert!(validate("1 2").is_err());
        assert!(validate("1.").is_err());
        assert!(validate("3e").is_err());
    }

    #[test]
    fn parser_builds_the_value_tree() {
        let v = Json::parse("{\"app\":\"lud\",\"n\":3,\"xs\":[1.5,true,null]}").unwrap();
        assert_eq!(v.get("app").and_then(Json::as_str), Some("lud"));
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(3));
        let xs = v.get("xs").and_then(Json::as_arr).unwrap();
        assert_eq!(xs[0].as_f64(), Some(1.5));
        assert_eq!(xs[1].as_bool(), Some(true));
        assert_eq!(xs[2], Json::Null);
        // Escapes decode; builder output round-trips through the parser.
        let row = JsonObject::new().str("k", "a\"b\\c\nd").finish();
        let back = Json::parse(&row).unwrap();
        assert_eq!(back.get("k").and_then(Json::as_str), Some("a\"b\\c\nd"));
    }

    #[test]
    fn parser_depth_bound_is_exact() {
        let deepest = format!(
            "{}1{}",
            "[".repeat(MAX_JSON_DEPTH - 1),
            "]".repeat(MAX_JSON_DEPTH - 1)
        );
        assert!(Json::parse(&deepest).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_JSON_DEPTH),
            "]".repeat(MAX_JSON_DEPTH)
        );
        assert!(Json::parse(&too_deep).unwrap_err().contains("nesting"));
    }
}
