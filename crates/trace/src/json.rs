//! Dependency-free JSON helpers: string/number emission for the exporters,
//! a line-oriented writer for machine-readable benchmark rows, and a strict
//! syntax validator used by tests (and available to downstream tooling).

use std::fmt::Write as _;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite JSON number; non-finite values become `null` (JSON has
/// no NaN/Infinity).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(out, "{:.1}", v);
        } else {
            let _ = write!(out, "{}", v);
        }
    } else {
        out.push_str("null");
    }
}

/// Builder for one flat JSON object rendered on a single line — the row
/// format of the `--json` benchmark outputs.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    buf: String,
    fields: usize,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn key(&mut self, key: &str) {
        if self.fields > 0 {
            self.buf.push(',');
        }
        write_str(&mut self.buf, key);
        self.buf.push(':');
        self.fields += 1;
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonObject {
        self.key(key);
        write_str(&mut self.buf, value);
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64(mut self, key: &str, value: f64) -> JsonObject {
        self.key(key);
        write_f64(&mut self.buf, value);
        self
    }

    /// Adds an optional float field (`null` when absent or non-finite).
    pub fn opt_f64(mut self, key: &str, value: Option<f64>) -> JsonObject {
        self.key(key);
        match value {
            Some(v) => write_f64(&mut self.buf, v),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Adds an integer field.
    pub fn i64(mut self, key: &str, value: i64) -> JsonObject {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> JsonObject {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> JsonObject {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

// ---------------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------------

/// Validates that `s` is one syntactically correct JSON value.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte '{}' at {}", *c as char, pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if *pos + 4 >= b.len()
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}"));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("unescaped control byte at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_the_validator() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\te\u{1}");
        validate(&s).unwrap();
    }

    #[test]
    fn object_builder_emits_valid_rows() {
        let row = JsonObject::new()
            .str("app", "lud")
            .f64("speedup", 1.25)
            .opt_f64("missing", None)
            .i64("n", -3)
            .u64("blocks", 12)
            .bool("ok", true)
            .finish();
        validate(&row).unwrap();
        assert!(row.starts_with("{\"app\":\"lud\""));
        assert!(row.contains("\"missing\":null"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate("{\"a\":[1,2.5,-3e2,true,null,\"x\"]}").unwrap();
        assert!(validate("{").is_err());
        assert!(validate("{\"a\":}").is_err());
        assert!(validate("[1,]").is_err());
        assert!(validate("\"\\q\"").is_err());
        assert!(validate("1 2").is_err());
    }
}
