//! Property tests for the frontend: every kernel synthesized from the
//! statement-grammar below must lower to verifier-clean IR, and the
//! structured SSA construction must agree with a direct AST interpreter on
//! scalar dataflow.

use proptest::prelude::*;
use respec_frontend::{compile_cuda, KernelSpec};
use respec_sim::{targets, GpuSim, KernelArg};

/// Grammar of generated statements. Every program reads `in[i]` into `v`,
/// mutates `v` and an auxiliary `w` through the statements, and writes
/// `out[i] = v + w`.
#[derive(Clone, Debug)]
enum Stmt {
    AddConst(i8),
    MulSmall(u8),
    IfPositive(Vec<Stmt>),
    CountedLoop(u8, Vec<Stmt>),
    SwapTemp,
    ClampLow,
}

fn stmt(depth: u32) -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(Stmt::AddConst),
        (1u8..4).prop_map(Stmt::MulSmall),
        Just(Stmt::SwapTemp),
        Just(Stmt::ClampLow),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Stmt::IfPositive),
            ((1u8..4), prop::collection::vec(inner, 1..3))
                .prop_map(|(n, b)| Stmt::CountedLoop(n, b)),
        ]
    })
}

fn emit(stmts: &[Stmt], out: &mut String, indent: usize) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::AddConst(c) => out.push_str(&format!("{pad}v = v + {}.0f;\n", c)),
            Stmt::MulSmall(m) => out.push_str(&format!("{pad}w = w * {m}.0f + v * 0.125f;\n")),
            Stmt::SwapTemp => {
                out.push_str(&format!("{pad}float t = v;\n{pad}v = w;\n{pad}w = t;\n"));
            }
            Stmt::ClampLow => out.push_str(&format!("{pad}v = fmaxf(v, -100.0f);\n")),
            Stmt::IfPositive(body) => {
                out.push_str(&format!("{pad}if (v > 0.0f) {{\n"));
                emit(body, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::CountedLoop(n, body) => {
                out.push_str(&format!("{pad}for (int q = 0; q < {n}; q++) {{\n"));
                emit(body, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

/// Direct AST interpreter over (v, w) for one thread's input value.
fn interp(stmts: &[Stmt], mut v: f32, mut w: f32) -> (f32, f32) {
    fn go(stmts: &[Stmt], v: &mut f32, w: &mut f32) {
        for s in stmts {
            match s {
                Stmt::AddConst(c) => *v += *c as f32,
                Stmt::MulSmall(m) => *w = *w * *m as f32 + *v * 0.125,
                Stmt::SwapTemp => std::mem::swap(v, w),
                Stmt::ClampLow => *v = v.max(-100.0),
                Stmt::IfPositive(body) => {
                    if *v > 0.0 {
                        go(body, v, w);
                    }
                }
                Stmt::CountedLoop(n, body) => {
                    for _ in 0..*n {
                        go(body, v, w);
                    }
                }
            }
        }
    }
    go(stmts, &mut v, &mut w);
    (v, w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lowered_kernels_match_ast_interpreter(stmts in prop::collection::vec(stmt(3), 1..6)) {
        let mut body = String::new();
        emit(&stmts, &mut body, 1);
        let src = format!(
            "__global__ void k(float* out, float* in) {{\n    \
                int i = blockIdx.x * blockDim.x + threadIdx.x;\n    \
                float v = in[i];\n    float w = 1.0f;\n{body}    \
                out[i] = v + w;\n}}\n"
        );
        let module = compile_cuda(&src, &[KernelSpec::new("k", [32, 1, 1])])
            .unwrap_or_else(|e| panic!("failed to compile generated kernel: {e}\n{src}"));
        let func = module.function("k").expect("kernel present");
        respec_ir::verify_function(func).expect("lowered IR verifies");

        let n = 64usize;
        let input: Vec<f32> = (0..n).map(|i| (i as f32) * 0.37 - 8.0).collect();
        let mut sim = GpuSim::new(targets::a4000());
        let ib = sim.mem.alloc_f32(&input);
        let ob = sim.mem.alloc_f32(&vec![0.0; n]);
        sim.launch(func, [2, 1, 1], &[KernelArg::Buf(ob), KernelArg::Buf(ib)], 32)
            .expect("launches");
        let out = sim.mem.read_f32(ob);
        for (i, &x) in input.iter().enumerate() {
            let (v, w) = interp(&stmts, x, 1.0);
            let expected = v + w;
            prop_assert!(
                (out[i] - expected).abs() <= 1e-3 * expected.abs().max(1.0),
                "thread {i}: got {}, expected {expected}\n{src}",
                out[i]
            );
        }
    }
}
