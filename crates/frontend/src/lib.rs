//! CUDA C-subset frontend for the `respec` GPU retargeting compiler.
//!
//! Where the paper builds on Polygeist's Clang-based importer, this crate
//! implements a self-contained pipeline for the CUDA subset the Rodinia
//! kernels use: a mini-preprocessor (numeric `#define`s), a lexer, a
//! recursive-descent parser, and a lowering stage that produces the parallel
//! IR of [`respec_ir`] with structured SSA construction (no allocas for
//! scalars — the analogue of Polygeist's mem2reg across barriers).
//!
//! # Supported subset
//!
//! * `__global__` kernels and `__device__` helper functions (inlined),
//! * scalar types `bool`, `int`, `long`, `float`, `double` (`unsigned` maps
//!   to signed), one level of pointers, static local/`__shared__` arrays,
//! * `if`/`else`, `for`, `while`, early-return guards (`if (c) return;`),
//! * `threadIdx/blockIdx/blockDim/gridDim`, `__syncthreads()`,
//! * the common math intrinsics (`sqrtf`, `expf`, `fminf`, `powf`, …).
//!
//! # Example
//!
//! ```
//! use respec_frontend::{compile_cuda, KernelSpec};
//!
//! let module = compile_cuda(
//!     r#"
//!     __global__ void saxpy(float* y, float* x, float a, int n) {
//!         int i = blockIdx.x * blockDim.x + threadIdx.x;
//!         if (i < n) y[i] = y[i] + a * x[i];
//!     }
//!     "#,
//!     &[KernelSpec::new("saxpy", [256, 1, 1])],
//! )?;
//! assert!(module.function("saxpy").is_some());
//! # Ok::<(), respec_frontend::CompileError>(())
//! ```

mod ast;
mod cparse;
mod lex;
mod lower;

pub use ast::{
    assigned_vars, BinopC, BuiltinVar, CType, Expr, ExprKind, FuncDef, FuncKind, ParamDecl, Stmt,
    StmtKind, TranslationUnit, UnopC,
};
pub use cparse::{parse_cuda, CParseError};
pub use lex::{lex, LexError, TokKind, Token};
pub use lower::{lower_kernel, lower_translation_unit, FrontendError, KernelSpec};

use std::fmt;

/// Error produced by [`compile_cuda`]: either a parse or a lowering failure.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// Lexical or syntactic error.
    Parse(CParseError),
    /// Type or subset error during lowering.
    Lower(FrontendError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => e.fmt(f),
            CompileError::Lower(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<CParseError> for CompileError {
    fn from(e: CParseError) -> CompileError {
        CompileError::Parse(e)
    }
}

impl From<FrontendError> for CompileError {
    fn from(e: FrontendError) -> CompileError {
        CompileError::Lower(e)
    }
}

impl From<CompileError> for respec_ir::Diagnostic {
    fn from(e: CompileError) -> respec_ir::Diagnostic {
        let code = match &e {
            CompileError::Parse(_) => "frontend-parse",
            CompileError::Lower(_) => "frontend-lower",
        };
        respec_ir::Diagnostic::error(code, e.to_string())
    }
}

/// Compiles CUDA source to an IR module containing one function per kernel
/// named in `specs`.
///
/// # Errors
///
/// Returns a [`CompileError`] on parse or lowering failure.
pub fn compile_cuda(src: &str, specs: &[KernelSpec]) -> Result<respec_ir::Module, CompileError> {
    let unit = parse_cuda(src)?;
    Ok(lower_translation_unit(&unit, specs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use respec_ir::{verify_function, OpKind, ParLevel};

    fn compile_one(src: &str, name: &str, dims: [i64; 3]) -> respec_ir::Function {
        let module = compile_cuda(src, &[KernelSpec::new(name, dims)]).expect("compilation");
        let func = module.function(name).expect("kernel present").clone();
        verify_function(&func).expect("verification");
        func
    }

    #[test]
    fn lowers_saxpy_with_guard() {
        let func = compile_one(
            "__global__ void saxpy(float* y, float* x, float a, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) y[i] = y[i] + a * x[i];
            }",
            "saxpy",
            [256, 1, 1],
        );
        let text = func.to_string();
        assert!(text.contains("parallel<block>"));
        assert!(text.contains("parallel<thread>"));
        let launches = respec_ir::kernel::analyze_function(&func).unwrap();
        assert_eq!(launches[0].block_dims, vec![256, 1, 1]);
    }

    #[test]
    fn lowers_shared_tile_with_barrier() {
        let func = compile_one(
            "#define BS 16
            __global__ void transpose(float* out, float* in, int n) {
                __shared__ float tile[BS][BS];
                int x = blockIdx.x * BS + threadIdx.x;
                int y = blockIdx.y * BS + threadIdx.y;
                tile[threadIdx.y][threadIdx.x] = in[y * n + x];
                __syncthreads();
                out[x * n + y] = tile[threadIdx.y][threadIdx.x];
            }",
            "transpose",
            [16, 16, 1],
        );
        let launches = respec_ir::kernel::analyze_function(&func).unwrap();
        assert_eq!(launches[0].shared_allocs.len(), 1);
        assert_eq!(launches[0].shared_bytes(&func), 16 * 16 * 4);
        let mut barriers = 0;
        respec_ir::walk::walk_ops(&func, func.body(), &mut |op| {
            if matches!(
                func.op(op).kind,
                OpKind::Barrier {
                    level: ParLevel::Thread
                }
            ) {
                barriers += 1;
            }
        });
        assert_eq!(barriers, 1);
    }

    #[test]
    fn lowers_counted_for_to_scf_for() {
        let func = compile_one(
            "__global__ void sum(float* out, float* in, int n) {
                float acc = 0.0f;
                for (int i = 0; i < n; i++) acc += in[i];
                out[threadIdx.x] = acc;
            }",
            "sum",
            [32, 1, 1],
        );
        let mut fors = 0;
        let mut whiles = 0;
        respec_ir::walk::walk_ops(&func, func.body(), &mut |op| match func.op(op).kind {
            OpKind::For => fors += 1,
            OpKind::While => whiles += 1,
            _ => {}
        });
        assert_eq!(fors, 1, "canonical loop must lower to scf.for");
        assert_eq!(whiles, 0);
    }

    #[test]
    fn noncanonical_loop_falls_back_to_while() {
        let func = compile_one(
            "__global__ void f(float* a, int n) {
                int i = 0;
                while (i * i < n) { a[i] = 0.0f; i = i + 1; }
            }",
            "f",
            [32, 1, 1],
        );
        let mut whiles = 0;
        respec_ir::walk::walk_ops(&func, func.body(), &mut |op| {
            if matches!(func.op(op).kind, OpKind::While) {
                whiles += 1;
            }
        });
        assert_eq!(whiles, 1);
    }

    #[test]
    fn if_merges_assigned_scalars() {
        let func = compile_one(
            "__global__ void f(float* a, int n) {
                int i = threadIdx.x;
                float v = 0.0f;
                if (i < n) { v = a[i]; } else { v = 1.0f; }
                a[i] = v;
            }",
            "f",
            [32, 1, 1],
        );
        // The if must carry one f32 result (the merged `v`).
        let mut found = false;
        respec_ir::walk::walk_ops(&func, func.body(), &mut |op| {
            if matches!(func.op(op).kind, OpKind::If) && func.op(op).results.len() == 1 {
                found = true;
            }
        });
        assert!(found, "merged variable must become an if result");
    }

    #[test]
    fn inlines_device_functions() {
        let func = compile_one(
            "__device__ float sq(float x) { return x * x; }
             __global__ void f(float* a) {
                 int i = threadIdx.x;
                 a[i] = sq(a[i]);
             }",
            "f",
            [32, 1, 1],
        );
        // No call op should remain.
        let mut calls = 0;
        respec_ir::walk::walk_ops(&func, func.body(), &mut |op| {
            if matches!(func.op(op).kind, OpKind::Call { .. }) {
                calls += 1;
            }
        });
        assert_eq!(calls, 0);
    }

    #[test]
    fn device_function_early_return() {
        let func = compile_one(
            "__device__ float clamp01(float x) {
                 if (x < 0.0f) return 0.0f;
                 if (x > 1.0f) return 1.0f;
                 return x;
             }
             __global__ void f(float* a) { a[threadIdx.x] = clamp01(a[threadIdx.x]); }",
            "f",
            [32, 1, 1],
        );
        verify_function(&func).unwrap();
    }

    #[test]
    fn early_return_guard_wraps_rest() {
        let func = compile_one(
            "__global__ void f(float* a, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i >= n) return;
                a[i] = 2.0f * a[i];
            }",
            "f",
            [64, 1, 1],
        );
        let text = func.to_string();
        assert!(text.contains("if"), "guard must lower to an if: {text}");
    }

    #[test]
    fn short_circuit_guards_memory_access() {
        compile_one(
            "__global__ void f(float* a, int n) {
                int i = threadIdx.x;
                if (i < n && a[i] > 0.0f) a[i] = -a[i];
            }",
            "f",
            [32, 1, 1],
        );
    }

    #[test]
    fn rejects_unknown_kernel_name() {
        let err = compile_cuda(
            "__global__ void f(float* a) { a[0] = 1.0f; }",
            &[KernelSpec::new("g", [1, 1, 1])],
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::Lower(_)));
    }

    #[test]
    fn rejects_recursive_device_function() {
        let err = compile_cuda(
            "__device__ float r(float x) { return r(x); }
             __global__ void f(float* a) { a[0] = r(a[0]); }",
            &[KernelSpec::new("f", [1, 1, 1])],
        )
        .unwrap_err();
        assert!(err.to_string().contains("recursive"));
    }

    #[test]
    fn local_arrays_allocate_in_local_space() {
        let func = compile_one(
            "__global__ void f(float* a) {
                float tmp[8];
                int i = threadIdx.x;
                tmp[i % 8] = a[i];
                a[i] = tmp[i % 8];
            }",
            "f",
            [32, 1, 1],
        );
        let mut local_allocs = 0;
        respec_ir::walk::walk_ops(&func, func.body(), &mut |op| {
            if matches!(
                func.op(op).kind,
                OpKind::Alloc {
                    space: respec_ir::MemSpace::Local
                }
            ) {
                local_allocs += 1;
            }
        });
        assert_eq!(local_allocs, 1);
    }

    #[test]
    fn ternary_lowered_with_unified_types() {
        compile_one(
            "__global__ void f(float* a, int n) {
                int i = threadIdx.x;
                a[i] = (i < n) ? a[i] : 0.0;
            }",
            "f",
            [32, 1, 1],
        );
    }

    #[test]
    fn grid_dim_is_usable() {
        compile_one(
            "__global__ void f(float* a, int n) {
                int stride = gridDim.x * blockDim.x;
                for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < n; i += stride) {
                    a[i] = a[i] + 1.0f;
                }
            }",
            "f",
            [128, 1, 1],
        );
    }
}
