//! Lowering from the CUDA AST to the parallel IR.
//!
//! Kernels become IR functions with three leading `index` parameters (the
//! grid extents) followed by the translated kernel parameters. The body is
//! the paper's Fig. 2 shape: a 3-D block-parallel loop containing the
//! shared-memory allocations and a 3-D thread-parallel loop.
//!
//! Scalar C variables are lowered with *structured SSA construction*:
//! assignments rebind names, `if`/`for`/`while` turn assigned variables into
//! region results / loop-carried values. This mirrors Polygeist's
//! memory-to-register promotion across barriers — scalars never touch
//! memory, so barriers impose no spurious memory traffic.

use std::collections::HashMap;
use std::fmt;

use respec_ir::{
    BinOp, CmpPred, FuncBuilder, Function, MemRefType, MemSpace, Module, OpKind, ParLevel,
    ScalarType, Type, UnOp, Value,
};

use crate::ast::*;

/// Compile-time launch geometry for one kernel, the analogue of knowing the
/// `<<<grid, block>>>` block size when compiling (the paper requires static
/// block sizes to size shared memory and check coarsening divisibility).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelSpec {
    /// Kernel name (must match a `__global__` function).
    pub name: String,
    /// Threads per block in x, y, z.
    pub block_dims: [i64; 3],
}

impl KernelSpec {
    /// Creates a spec; unused trailing dimensions should be 1.
    pub fn new(name: impl Into<String>, block_dims: [i64; 3]) -> KernelSpec {
        KernelSpec {
            name: name.into(),
            block_dims,
        }
    }
}

/// Error produced during lowering (type errors, unsupported constructs).
#[derive(Clone, Debug, PartialEq)]
pub struct FrontendError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FrontendError {}

/// A typed SSA value; `lit` marks values originating from literals, which
/// coerce to their peer's type instead of forcing C's promotion to `double`.
#[derive(Clone, Copy, Debug)]
struct TV {
    v: Value,
    ty: ScalarType,
    lit: bool,
}

/// What a C name currently denotes.
#[derive(Clone, Copy, Debug)]
enum Slot {
    Scalar(Value, ScalarType),
    Mem(Value),
}

fn scalar_of(ty: &CType, line: u32) -> Result<ScalarType, FrontendError> {
    match ty {
        CType::Bool => Ok(ScalarType::I1),
        CType::Int => Ok(ScalarType::I32),
        CType::Long => Ok(ScalarType::I64),
        CType::Float => Ok(ScalarType::F32),
        CType::Double => Ok(ScalarType::F64),
        CType::Void | CType::Ptr(_) => Err(FrontendError {
            message: format!("expected scalar type, found {ty:?}"),
            line,
        }),
    }
}

fn rank(ty: ScalarType) -> u8 {
    match ty {
        ScalarType::I1 => 0,
        ScalarType::I32 => 1,
        ScalarType::Index => 2,
        ScalarType::I64 => 3,
        ScalarType::F32 => 4,
        ScalarType::F64 => 5,
    }
}

struct Lowerer<'f, 'u> {
    b: FuncBuilder<'f>,
    unit: &'u TranslationUnit,
    scopes: Vec<HashMap<String, Slot>>,
    /// thread ivs, block ivs, grid extents — available inside kernel bodies.
    tids: Vec<Value>,
    bids: Vec<Value>,
    grid: Vec<Value>,
    block_dims: [i64; 3],
    inline_stack: Vec<String>,
}

impl<'f, 'u> Lowerer<'f, 'u> {
    fn err(&self, line: u32, message: impl Into<String>) -> FrontendError {
        FrontendError {
            message: message.into(),
            line,
        }
    }

    // ---- environment ------------------------------------------------------

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn bind(&mut self, name: &str, slot: Slot) {
        self.scopes
            .last_mut()
            .expect("scope stack is never empty")
            .insert(name.to_string(), slot);
    }

    fn lookup(&self, name: &str) -> Option<Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    /// Rebinds an existing scalar variable in the scope that defines it.
    fn rebind(&mut self, name: &str, v: Value, ty: ScalarType) -> bool {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = Slot::Scalar(v, ty);
                return true;
            }
        }
        false
    }

    /// Scalar variables from `names` that currently exist in scope, with
    /// their values and types (the merge set for control-flow joins).
    fn live_scalars(&self, names: &[String]) -> Vec<(String, Value, ScalarType)> {
        names
            .iter()
            .filter_map(|n| match self.lookup(n) {
                Some(Slot::Scalar(v, ty)) => Some((n.clone(), v, ty)),
                _ => None,
            })
            .collect()
    }

    // ---- typed helpers -----------------------------------------------------

    fn cast_to(&mut self, tv: TV, ty: ScalarType) -> Value {
        if tv.ty == ty {
            tv.v
        } else {
            self.b.cast(tv.v, ty)
        }
    }

    fn cast_index(&mut self, tv: TV) -> Value {
        self.cast_to(tv, ScalarType::Index)
    }

    fn cast_bool(&mut self, tv: TV) -> Value {
        if tv.ty == ScalarType::I1 {
            return tv.v;
        }
        let zero = if tv.ty.is_float() {
            self.b.const_float(0.0, tv.ty)
        } else {
            self.b.const_int(0, tv.ty)
        };
        self.b.cmp(CmpPred::Ne, tv.v, zero)
    }

    /// Coerces two values to a common scalar type: literals adopt their
    /// peer's type; otherwise the lower-ranked operand is promoted.
    fn unify(&mut self, a: TV, b: TV) -> (Value, Value, ScalarType, bool) {
        if a.ty == b.ty {
            return (a.v, b.v, a.ty, a.lit && b.lit);
        }
        let (target, lit) = if a.lit && !b.lit {
            (b.ty, false)
        } else if b.lit && !a.lit {
            (a.ty, false)
        } else if rank(a.ty) >= rank(b.ty) {
            (a.ty, a.lit && b.lit)
        } else {
            (b.ty, a.lit && b.lit)
        };
        let av = self.cast_to(a, target);
        let bv = self.cast_to(b, target);
        (av, bv, target, lit)
    }

    // ---- expressions --------------------------------------------------------

    fn eval(&mut self, e: &Expr) -> Result<TV, FrontendError> {
        let line = e.line;
        match &e.kind {
            ExprKind::IntLit(v) => {
                let c = self.b.const_i32(*v as i32);
                Ok(TV {
                    v: c,
                    ty: ScalarType::I32,
                    lit: true,
                })
            }
            ExprKind::FloatLit(v, is_f32) => {
                let ty = if *is_f32 {
                    ScalarType::F32
                } else {
                    ScalarType::F64
                };
                let c = self.b.const_float(*v, ty);
                Ok(TV {
                    v: c,
                    ty,
                    lit: true,
                })
            }
            ExprKind::Ident(name) => match self.lookup(name) {
                Some(Slot::Scalar(v, ty)) => Ok(TV { v, ty, lit: false }),
                Some(Slot::Mem(_)) => Err(self.err(
                    line,
                    format!("{name} is a pointer/array, expected a scalar"),
                )),
                None => Err(self.err(line, format!("use of undeclared identifier {name}"))),
            },
            ExprKind::Builtin(var, dim) => {
                let d = *dim;
                let v = match var {
                    BuiltinVar::ThreadIdx => {
                        let iv = self.tids[d];
                        self.b.cast(iv, ScalarType::I32)
                    }
                    BuiltinVar::BlockIdx => {
                        let iv = self.bids[d];
                        self.b.cast(iv, ScalarType::I32)
                    }
                    BuiltinVar::BlockDim => self.b.const_i32(self.block_dims[d] as i32),
                    BuiltinVar::GridDim => {
                        let g = self.grid[d];
                        self.b.cast(g, ScalarType::I32)
                    }
                };
                Ok(TV {
                    v,
                    ty: ScalarType::I32,
                    lit: false,
                })
            }
            ExprKind::Unary(op, a) => {
                let tv = self.eval(a)?;
                match op {
                    UnopC::Neg => {
                        let v = self.b.unary(UnOp::Neg, tv.v);
                        Ok(TV {
                            v,
                            ty: tv.ty,
                            lit: tv.lit,
                        })
                    }
                    UnopC::Not => {
                        let bl = self.cast_bool(tv);
                        let v = self.b.unary(UnOp::Not, bl);
                        Ok(TV {
                            v,
                            ty: ScalarType::I1,
                            lit: false,
                        })
                    }
                    UnopC::BitNot => {
                        if tv.ty.is_float() {
                            return Err(self.err(line, "bitwise not on a float"));
                        }
                        let v = self.b.unary(UnOp::Not, tv.v);
                        Ok(TV {
                            v,
                            ty: tv.ty,
                            lit: false,
                        })
                    }
                }
            }
            ExprKind::Binary(op, a, bx) => self.eval_binary(*op, a, bx, line),
            ExprKind::Assign { .. } | ExprKind::IncDec { .. } => {
                Err(self.err(line, "assignment is only supported in statement position"))
            }
            ExprKind::Call { name, args } => self.eval_call(name, args, line),
            ExprKind::Index { .. } => {
                let (mem, indices, elem) = self.eval_lvalue_mem(e)?;
                let v = self.b.load(mem, &indices);
                Ok(TV {
                    v,
                    ty: elem,
                    lit: false,
                })
            }
            ExprKind::Cast { ty, expr } => {
                let target = scalar_of(ty, line)?;
                let tv = self.eval(expr)?;
                let v = self.cast_to(tv, target);
                Ok(TV {
                    v,
                    ty: target,
                    lit: false,
                })
            }
            ExprKind::Cond { cond, then, els } => {
                let c = self.eval(cond)?;
                let c = self.cast_bool(c);
                // Evaluate both arms in detached regions, then unify their
                // types by appending casts before the yields.
                let then_region = self.b.begin_region();
                let t = self.eval(then)?;
                self.b.end_region();
                let else_region = self.b.begin_region();
                let f = self.eval(els)?;
                self.b.end_region();
                let target = if t.ty == f.ty {
                    t.ty
                } else if t.lit && !f.lit {
                    f.ty
                } else if (f.lit && !t.lit) || rank(t.ty) >= rank(f.ty) {
                    t.ty
                } else {
                    f.ty
                };
                self.b.resume_region(then_region);
                let tv = self.cast_to(t, target);
                self.b.emit(OpKind::Yield, vec![tv], vec![], vec![]);
                self.b.end_region();
                self.b.resume_region(else_region);
                let fv = self.cast_to(f, target);
                self.b.emit(OpKind::Yield, vec![fv], vec![], vec![]);
                self.b.end_region();
                let op = self.b.emit(
                    OpKind::If,
                    vec![c],
                    vec![Type::Scalar(target)],
                    vec![then_region, else_region],
                );
                let v = self.b.func().op(op).results[0];
                Ok(TV {
                    v,
                    ty: target,
                    lit: false,
                })
            }
        }
    }

    fn eval_binary(
        &mut self,
        op: BinopC,
        a: &Expr,
        b: &Expr,
        line: u32,
    ) -> Result<TV, FrontendError> {
        // Short-circuit logic first: the right operand may be guarded by the
        // left (e.g. `i < n && data[i] > 0`).
        if matches!(op, BinopC::LogAnd | BinopC::LogOr) {
            let l = self.eval(a)?;
            let lb = self.cast_bool(l);
            let rhs_region = self.b.begin_region();
            let r = self.eval(b)?;
            let rb = self.cast_bool(r);
            self.b.emit(OpKind::Yield, vec![rb], vec![], vec![]);
            self.b.end_region();
            let const_region = self.b.begin_region();
            let k = self.b.const_bool(op == BinopC::LogOr);
            self.b.emit(OpKind::Yield, vec![k], vec![], vec![]);
            self.b.end_region();
            let (then_r, else_r) = if op == BinopC::LogAnd {
                (rhs_region, const_region)
            } else {
                (const_region, rhs_region)
            };
            let if_op = self.b.emit(
                OpKind::If,
                vec![lb],
                vec![Type::Scalar(ScalarType::I1)],
                vec![then_r, else_r],
            );
            let v = self.b.func().op(if_op).results[0];
            return Ok(TV {
                v,
                ty: ScalarType::I1,
                lit: false,
            });
        }
        let l = self.eval(a)?;
        let r = self.eval(b)?;
        let (lv, rv, ty, lit) = self.unify(l, r);
        let ir_bin = match op {
            BinopC::Add => Some(BinOp::Add),
            BinopC::Sub => Some(BinOp::Sub),
            BinopC::Mul => Some(BinOp::Mul),
            BinopC::Div => Some(BinOp::Div),
            BinopC::Rem => Some(BinOp::Rem),
            BinopC::Shl => Some(BinOp::Shl),
            BinopC::Shr => Some(BinOp::Shr),
            BinopC::BitAnd => Some(BinOp::And),
            BinopC::BitOr => Some(BinOp::Or),
            BinopC::BitXor => Some(BinOp::Xor),
            _ => None,
        };
        if let Some(bin) = ir_bin {
            if matches!(
                bin,
                BinOp::Shl | BinOp::Shr | BinOp::And | BinOp::Or | BinOp::Xor
            ) && ty.is_float()
            {
                return Err(self.err(line, "bitwise operation on floats"));
            }
            let v = self.b.binary(bin, lv, rv);
            return Ok(TV { v, ty, lit });
        }
        let pred = match op {
            BinopC::Lt => CmpPred::Lt,
            BinopC::Le => CmpPred::Le,
            BinopC::Gt => CmpPred::Gt,
            BinopC::Ge => CmpPred::Ge,
            BinopC::EqEq => CmpPred::Eq,
            BinopC::Ne => CmpPred::Ne,
            _ => unreachable!("all binary operators handled"),
        };
        let v = self.b.cmp(pred, lv, rv);
        Ok(TV {
            v,
            ty: ScalarType::I1,
            lit: false,
        })
    }

    fn eval_call(&mut self, name: &str, args: &[Expr], line: u32) -> Result<TV, FrontendError> {
        // Unary math intrinsics.
        let un = match name {
            "sqrt" | "sqrtf" | "__fsqrt_rn" => Some(UnOp::Sqrt),
            "rsqrt" | "rsqrtf" => Some(UnOp::Rsqrt),
            "exp" | "expf" | "__expf" => Some(UnOp::Exp),
            "log" | "logf" | "__logf" => Some(UnOp::Log),
            "sin" | "sinf" | "__sinf" => Some(UnOp::Sin),
            "cos" | "cosf" | "__cosf" => Some(UnOp::Cos),
            "tanh" | "tanhf" => Some(UnOp::Tanh),
            "fabs" | "fabsf" | "abs" => Some(UnOp::Abs),
            "floor" | "floorf" => Some(UnOp::Floor),
            "ceil" | "ceilf" => Some(UnOp::Ceil),
            _ => None,
        };
        if let Some(u) = un {
            if args.len() != 1 {
                return Err(self.err(line, format!("{name} takes one argument")));
            }
            let a = self.eval(&args[0])?;
            let v = self.b.unary(u, a.v);
            return Ok(TV {
                v,
                ty: a.ty,
                lit: false,
            });
        }
        let bin = match name {
            "min" | "fmin" | "fminf" => Some(BinOp::Min),
            "max" | "fmax" | "fmaxf" => Some(BinOp::Max),
            "pow" | "powf" | "__powf" => Some(BinOp::Pow),
            _ => None,
        };
        if let Some(bop) = bin {
            if args.len() != 2 {
                return Err(self.err(line, format!("{name} takes two arguments")));
            }
            let a = self.eval(&args[0])?;
            let c = self.eval(&args[1])?;
            let (av, cv, ty, lit) = self.unify(a, c);
            let v = self.b.binary(bop, av, cv);
            return Ok(TV { v, ty, lit });
        }
        // User __device__ function: inline it.
        let fdef = self
            .unit
            .func(name)
            .ok_or_else(|| self.err(line, format!("call to unknown function {name}")))?
            .clone();
        if fdef.kind != FuncKind::Device {
            return Err(self.err(line, format!("{name} is not a __device__ function")));
        }
        if self.inline_stack.iter().any(|n| n == name) {
            return Err(self.err(line, format!("recursive call to {name} cannot be inlined")));
        }
        if args.len() != fdef.params.len() {
            return Err(self.err(
                line,
                format!("{name} expects {} arguments", fdef.params.len()),
            ));
        }
        // Evaluate arguments in the caller's environment, then bind them in a
        // fresh callee scope (C by-value semantics for scalars).
        let mut bindings = Vec::new();
        for (arg, param) in args.iter().zip(&fdef.params) {
            if param.ty.is_ptr() {
                let slot = match &arg.kind {
                    ExprKind::Ident(n) => self.lookup(n),
                    _ => None,
                };
                match slot {
                    Some(Slot::Mem(m)) => bindings.push((param.name.clone(), Slot::Mem(m))),
                    _ => {
                        return Err(self.err(
                            line,
                            "pointer arguments must be plain array/pointer names (no pointer arithmetic)",
                        ))
                    }
                }
            } else {
                let want = scalar_of(&param.ty, line)?;
                let tv = self.eval(arg)?;
                let v = self.cast_to(tv, want);
                bindings.push((param.name.clone(), Slot::Scalar(v, want)));
            }
        }
        self.inline_stack.push(name.to_string());
        self.push_scope();
        for (n, s) in bindings {
            self.bind(&n, s);
        }
        let ret_ty = if fdef.ret == CType::Void {
            None
        } else {
            Some(scalar_of(&fdef.ret, line)?)
        };
        let result = self.lower_device_body(&fdef.body, ret_ty, line)?;
        self.pop_scope();
        self.inline_stack.pop();
        match (result, ret_ty) {
            (Some(v), Some(ty)) => Ok(TV { v, ty, lit: false }),
            (None, None) => {
                // Void call in expression position: produce a dummy zero; the
                // parser only allows this in statement position anyway.
                let v = self.b.const_i32(0);
                Ok(TV {
                    v,
                    ty: ScalarType::I32,
                    lit: false,
                })
            }
            _ => Err(self.err(line, format!("{name} did not return a value on every path"))),
        }
    }

    /// Resolves an lvalue expression (`a[i]`, `tile[y][x]`) to its memref,
    /// index list (as `index` values) and element type.
    fn eval_lvalue_mem(
        &mut self,
        e: &Expr,
    ) -> Result<(Value, Vec<Value>, ScalarType), FrontendError> {
        let line = e.line;
        // Peel the index chain.
        let mut indices_rev: Vec<&Expr> = Vec::new();
        let mut base = e;
        while let ExprKind::Index { base: b, index } = &base.kind {
            indices_rev.push(index);
            base = b;
        }
        let name = match &base.kind {
            ExprKind::Ident(n) => n.clone(),
            _ => return Err(self.err(line, "indexed base must be an array or pointer name")),
        };
        let mem = match self.lookup(&name) {
            Some(Slot::Mem(m)) => m,
            Some(Slot::Scalar(..)) => {
                return Err(self.err(line, format!("{name} is a scalar, cannot index it")))
            }
            None => return Err(self.err(line, format!("use of undeclared identifier {name}"))),
        };
        let memref = self
            .b
            .func()
            .value_type(mem)
            .as_memref()
            .expect("Mem slots always hold memrefs")
            .clone();
        if indices_rev.len() != memref.rank() {
            return Err(self.err(
                line,
                format!(
                    "{name} has rank {}, but {} indices were provided",
                    memref.rank(),
                    indices_rev.len()
                ),
            ));
        }
        let mut indices = Vec::new();
        for idx in indices_rev.into_iter().rev() {
            let tv = self.eval(idx)?;
            indices.push(self.cast_index(tv));
        }
        Ok((mem, indices, memref.elem))
    }

    // ---- statements -----------------------------------------------------------

    /// Lowers a statement list, handling the early-return guard pattern
    /// (`if (cond) return;`) by nesting the remainder of the list.
    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), FrontendError> {
        for (i, stmt) in stmts.iter().enumerate() {
            // Early-return guard: if (c) return;  ⇒  if (!c) { rest }
            if let StmtKind::If {
                cond,
                then,
                els: None,
            } = &stmt.kind
            {
                if is_bare_return(then) {
                    let c = self.eval(cond)?;
                    let cb = self.cast_bool(c);
                    let not_c = self.b.unary(UnOp::Not, cb);
                    let rest = &stmts[i + 1..];
                    let then_region = self.b.begin_region();
                    self.push_scope();
                    self.lower_stmts(rest)?;
                    self.pop_scope();
                    self.b.emit(OpKind::Yield, vec![], vec![], vec![]);
                    self.b.end_region();
                    let else_region = self.b.begin_region();
                    self.b.emit(OpKind::Yield, vec![], vec![], vec![]);
                    self.b.end_region();
                    self.b.emit(
                        OpKind::If,
                        vec![not_c],
                        vec![],
                        vec![then_region, else_region],
                    );
                    return Ok(());
                }
            }
            if matches!(stmt.kind, StmtKind::Return(None)) {
                // Plain tail return: stop lowering this list.
                return Ok(());
            }
            self.lower_stmt(stmt)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), FrontendError> {
        let line = stmt.line;
        match &stmt.kind {
            StmtKind::Decl {
                name,
                ty,
                dims,
                shared,
                init,
            } => {
                if *shared {
                    return Err(
                        self.err(line, "__shared__ declarations must be at kernel top level")
                    );
                }
                if dims.is_empty() {
                    let sty = scalar_of(ty, line)?;
                    let v = match init {
                        Some(e) => {
                            let tv = self.eval(e)?;
                            self.cast_to(tv, sty)
                        }
                        // Uninitialized scalars read as zero (documented
                        // tightening of C's undefined behaviour).
                        None => {
                            if sty.is_float() {
                                self.b.const_float(0.0, sty)
                            } else {
                                self.b.const_int(0, sty)
                            }
                        }
                    };
                    self.bind(name, Slot::Scalar(v, sty));
                } else {
                    if init.is_some() {
                        return Err(self.err(line, "array initializers are not supported"));
                    }
                    let sty = scalar_of(ty, line)?;
                    let shape: Vec<i64> = dims.iter().map(|&d| d as i64).collect();
                    let mem = self.b.alloc_static(sty, &shape, MemSpace::Local);
                    self.bind(name, Slot::Mem(mem));
                }
                Ok(())
            }
            StmtKind::Expr(e) => self.lower_expr_stmt(e),
            StmtKind::Block(stmts) => {
                self.push_scope();
                self.lower_stmts(stmts)?;
                self.pop_scope();
                Ok(())
            }
            StmtKind::If { cond, then, els } => self.lower_if(cond, then, els.as_deref(), line),
            StmtKind::For {
                init,
                cond,
                inc,
                body,
            } => self.lower_for(init.as_deref(), cond.as_ref(), inc.as_ref(), body, line),
            StmtKind::While { cond, body } => self.lower_while(cond, body),
            StmtKind::Return(_) => Err(self.err(
                line,
                "return is only supported at the end of a kernel or as `if (cond) return;` guards",
            )),
            StmtKind::Sync => {
                self.b.barrier(ParLevel::Thread);
                Ok(())
            }
        }
    }

    fn lower_expr_stmt(&mut self, e: &Expr) -> Result<(), FrontendError> {
        let line = e.line;
        match &e.kind {
            ExprKind::Assign { op, lhs, rhs } => match &lhs.kind {
                ExprKind::Ident(name) => {
                    let (old_v, old_ty) = match self.lookup(name) {
                        Some(Slot::Scalar(v, ty)) => (v, ty),
                        Some(Slot::Mem(_)) => {
                            return Err(self.err(line, format!("cannot reassign pointer {name}")))
                        }
                        None => {
                            return Err(
                                self.err(line, format!("use of undeclared identifier {name}"))
                            )
                        }
                    };
                    let rhs_tv = self.eval(rhs)?;
                    let new = match op {
                        None => self.cast_to(rhs_tv, old_ty),
                        Some(bop) => {
                            let combined = self.apply_compound(
                                *bop,
                                TV {
                                    v: old_v,
                                    ty: old_ty,
                                    lit: false,
                                },
                                rhs_tv,
                                line,
                            )?;
                            self.cast_to(combined, old_ty)
                        }
                    };
                    self.rebind(name, new, old_ty);
                    Ok(())
                }
                ExprKind::Index { .. } => {
                    let (mem, indices, elem) = self.eval_lvalue_mem(lhs)?;
                    let rhs_tv = self.eval(rhs)?;
                    let stored = match op {
                        None => self.cast_to(rhs_tv, elem),
                        Some(bop) => {
                            let old = self.b.load(mem, &indices);
                            let combined = self.apply_compound(
                                *bop,
                                TV {
                                    v: old,
                                    ty: elem,
                                    lit: false,
                                },
                                rhs_tv,
                                line,
                            )?;
                            self.cast_to(combined, elem)
                        }
                    };
                    self.b.store(stored, mem, &indices);
                    Ok(())
                }
                _ => Err(self.err(
                    line,
                    "assignment target must be a variable or array element",
                )),
            },
            ExprKind::IncDec { inc, lhs } => {
                let op = if *inc { BinopC::Add } else { BinopC::Sub };
                let one = Expr {
                    kind: ExprKind::IntLit(1),
                    line,
                };
                let desugared = Expr {
                    kind: ExprKind::Assign {
                        op: Some(op),
                        lhs: lhs.clone(),
                        rhs: Box::new(one),
                    },
                    line,
                };
                self.lower_expr_stmt(&desugared)
            }
            ExprKind::Call { .. } => {
                // Void device-function call for its side effects.
                self.eval(e)?;
                Ok(())
            }
            _ => Err(self.err(line, "expression has no effect")),
        }
    }

    fn apply_compound(
        &mut self,
        op: BinopC,
        lhs: TV,
        rhs: TV,
        line: u32,
    ) -> Result<TV, FrontendError> {
        let (lv, rv, ty, _) = self.unify(lhs, rhs);
        let bin = match op {
            BinopC::Add => BinOp::Add,
            BinopC::Sub => BinOp::Sub,
            BinopC::Mul => BinOp::Mul,
            BinopC::Div => BinOp::Div,
            BinopC::Rem => BinOp::Rem,
            BinopC::Shl => BinOp::Shl,
            BinopC::Shr => BinOp::Shr,
            BinopC::BitAnd => BinOp::And,
            BinopC::BitOr => BinOp::Or,
            BinopC::BitXor => BinOp::Xor,
            other => {
                return Err(self.err(
                    line,
                    format!("{other:?} is not a valid compound assignment"),
                ))
            }
        };
        let v = self.b.binary(bin, lv, rv);
        Ok(TV { v, ty, lit: false })
    }

    fn lower_if(
        &mut self,
        cond: &Expr,
        then: &Stmt,
        els: Option<&Stmt>,
        _line: u32,
    ) -> Result<(), FrontendError> {
        let c = self.eval(cond)?;
        let cb = self.cast_bool(c);
        // The merge set: scalars assigned in either branch that exist now.
        let mut names = Vec::new();
        assigned_vars(std::slice::from_ref(then), &mut names);
        if let Some(e) = els {
            assigned_vars(std::slice::from_ref(e), &mut names);
        }
        let merged = self.live_scalars(&names);
        let snapshot: Vec<(String, Value, ScalarType)> = merged.clone();

        let then_region = self.b.begin_region();
        self.push_scope();
        self.lower_stmts(std::slice::from_ref(then))?;
        self.pop_scope();
        let then_finals: Vec<Value> = merged
            .iter()
            .map(|(n, _, ty)| match self.lookup(n) {
                Some(Slot::Scalar(v, _)) => v,
                _ => {
                    let _ = ty;
                    unreachable!("merged variables stay scalars")
                }
            })
            .collect();
        self.b.emit(OpKind::Yield, then_finals, vec![], vec![]);
        self.b.end_region();

        // Restore pre-branch values before lowering the else branch.
        for (n, v, ty) in &snapshot {
            self.rebind(n, *v, *ty);
        }
        let else_region = self.b.begin_region();
        if let Some(e) = els {
            self.push_scope();
            self.lower_stmts(std::slice::from_ref(e))?;
            self.pop_scope();
        }
        let else_finals: Vec<Value> = merged
            .iter()
            .map(|(n, _, _)| match self.lookup(n) {
                Some(Slot::Scalar(v, _)) => v,
                _ => unreachable!("merged variables stay scalars"),
            })
            .collect();
        self.b.emit(OpKind::Yield, else_finals, vec![], vec![]);
        self.b.end_region();

        let result_types: Vec<Type> = merged.iter().map(|(_, _, ty)| Type::Scalar(*ty)).collect();
        let op = self.b.emit(
            OpKind::If,
            vec![cb],
            result_types,
            vec![then_region, else_region],
        );
        let results = self.b.func().op(op).results.clone();
        for ((n, _, ty), v) in merged.iter().zip(results) {
            self.rebind(n, v, *ty);
        }
        Ok(())
    }

    /// Recognizes the canonical counted loop `for (int i = e0; i < e1; i += c)`
    /// and lowers it to `scf.for`; anything else falls back to `scf.while`.
    fn lower_for(
        &mut self,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        inc: Option<&Expr>,
        body: &Stmt,
        line: u32,
    ) -> Result<(), FrontendError> {
        if let (Some(init), Some(cond), Some(inc)) = (init, cond, inc) {
            if let Some(()) = self.try_lower_counted_for(init, cond, inc, body)? {
                return Ok(());
            }
        }
        // General fallback: desugar to while.
        self.push_scope();
        if let Some(i) = init {
            self.lower_stmt(i)?;
        }
        let true_expr = Expr {
            kind: ExprKind::IntLit(1),
            line,
        };
        let cond = cond.cloned().unwrap_or(true_expr);
        let inc_stmt = inc.map(|e| Stmt {
            kind: StmtKind::Expr(e.clone()),
            line,
        });
        let mut body_stmts = vec![body.clone()];
        if let Some(s) = inc_stmt {
            body_stmts.push(s);
        }
        let while_body = Stmt {
            kind: StmtKind::Block(body_stmts),
            line,
        };
        self.lower_while(&cond, &while_body)?;
        self.pop_scope();
        Ok(())
    }

    /// Attempts the `scf.for` lowering; returns `Ok(None)` when the loop is
    /// not in canonical form.
    fn try_lower_counted_for(
        &mut self,
        init: &Stmt,
        cond: &Expr,
        inc: &Expr,
        body: &Stmt,
    ) -> Result<Option<()>, FrontendError> {
        // init: int i = e0  (fresh declaration only)
        let (iname, ity, init_expr) = match &init.kind {
            StmtKind::Decl {
                name,
                ty,
                dims,
                shared: false,
                init: Some(e),
            } if dims.is_empty() && matches!(ty, CType::Int | CType::Long) => {
                (name.clone(), ty.clone(), e)
            }
            _ => return Ok(None),
        };
        // cond: i < e1  or  i <= e1
        let (le, ub_expr) = match &cond.kind {
            ExprKind::Binary(BinopC::Lt, l, r) if matches!(&l.kind, ExprKind::Ident(n) if *n == iname) => {
                (false, r.as_ref())
            }
            ExprKind::Binary(BinopC::Le, l, r) if matches!(&l.kind, ExprKind::Ident(n) if *n == iname) => {
                (true, r.as_ref())
            }
            _ => return Ok(None),
        };
        // inc: i++ / ++i / i += c / i = i + c
        let step_expr: Option<&Expr> = match &inc.kind {
            ExprKind::IncDec { inc: true, lhs } if matches!(&lhs.kind, ExprKind::Ident(n) if *n == iname) => {
                None
            }
            ExprKind::Assign {
                op: Some(BinopC::Add),
                lhs,
                rhs,
            } if matches!(&lhs.kind, ExprKind::Ident(n) if *n == iname) => Some(rhs),
            ExprKind::Assign { op: None, lhs, rhs } if matches!(&lhs.kind, ExprKind::Ident(n) if *n == iname) => {
                match &rhs.kind {
                    ExprKind::Binary(BinopC::Add, a, b2) => {
                        if matches!(&a.kind, ExprKind::Ident(n) if *n == iname) {
                            Some(b2.as_ref())
                        } else if matches!(&b2.kind, ExprKind::Ident(n) if *n == iname) {
                            Some(a.as_ref())
                        } else {
                            return Ok(None);
                        }
                    }
                    _ => return Ok(None),
                }
            }
            _ => return Ok(None),
        };
        // The body must not reassign the induction variable, and the upper
        // bound / step must not depend on variables assigned in the body.
        let mut body_assigned = Vec::new();
        assigned_vars(std::slice::from_ref(body), &mut body_assigned);
        if body_assigned.contains(&iname) {
            return Ok(None);
        }
        let mut bound_reads = Vec::new();
        collect_idents(ub_expr, &mut bound_reads);
        if let Some(s) = step_expr {
            collect_idents(s, &mut bound_reads);
        }
        if bound_reads.iter().any(|n| body_assigned.contains(n)) {
            return Ok(None);
        }

        let sty = scalar_of(&ity, init.line)?;
        let lb_tv = self.eval(init_expr)?;
        let lb = self.cast_index(lb_tv);
        let ub_tv = self.eval(ub_expr)?;
        let mut ub = self.cast_index(ub_tv);
        if le {
            let one = self.b.const_index(1);
            ub = self.b.add(ub, one);
        }
        let step = match step_expr {
            None => self.b.const_index(1),
            Some(e) => {
                let tv = self.eval(e)?;
                self.cast_index(tv)
            }
        };
        let merged = self.live_scalars(&body_assigned);
        let inits: Vec<Value> = merged.iter().map(|(_, v, _)| *v).collect();
        let result_types: Vec<Type> = merged.iter().map(|(_, _, ty)| Type::Scalar(*ty)).collect();

        let region = self.b.begin_region();
        let iv = self.b.func_mut().add_region_arg(region, Type::index());
        let iter_args: Vec<Value> = result_types
            .iter()
            .map(|ty| self.b.func_mut().add_region_arg(region, ty.clone()))
            .collect();
        self.push_scope();
        let iv_typed = self.b.cast(iv, sty);
        self.bind(&iname, Slot::Scalar(iv_typed, sty));
        for ((n, _, ty), arg) in merged.iter().zip(&iter_args) {
            self.rebind(n, *arg, *ty);
        }
        self.lower_stmts(std::slice::from_ref(body))?;
        let finals: Vec<Value> = merged
            .iter()
            .map(|(n, _, _)| match self.lookup(n) {
                Some(Slot::Scalar(v, _)) => v,
                _ => unreachable!("merged variables stay scalars"),
            })
            .collect();
        self.pop_scope();
        self.b.emit(OpKind::Yield, finals, vec![], vec![]);
        self.b.end_region();

        let mut operands = vec![lb, ub, step];
        operands.extend(inits);
        let op = self
            .b
            .emit(OpKind::For, operands, result_types, vec![region]);
        let results = self.b.func().op(op).results.clone();
        for ((n, _, ty), v) in merged.iter().zip(results) {
            self.rebind(n, v, *ty);
        }
        Ok(Some(()))
    }

    fn lower_while(&mut self, cond: &Expr, body: &Stmt) -> Result<(), FrontendError> {
        let mut names = Vec::new();
        collect_idents(cond, &mut names);
        assigned_vars(std::slice::from_ref(body), &mut names);
        let mut assigned = Vec::new();
        assigned_vars(
            &[Stmt {
                kind: StmtKind::Expr(cond.clone()),
                line: 0,
            }],
            &mut assigned,
        );
        assigned_vars(std::slice::from_ref(body), &mut assigned);
        // Carried variables: scalars assigned in the loop. (Scalars only read
        // stay invariant and are referenced from outside the region.)
        let merged = self.live_scalars(&assigned);
        let inits: Vec<Value> = merged.iter().map(|(_, v, _)| *v).collect();
        let tys: Vec<Type> = merged.iter().map(|(_, _, ty)| Type::Scalar(*ty)).collect();

        let cond_region = self.b.begin_region();
        let cond_args: Vec<Value> = tys
            .iter()
            .map(|ty| self.b.func_mut().add_region_arg(cond_region, ty.clone()))
            .collect();
        self.push_scope();
        for ((n, _, ty), arg) in merged.iter().zip(&cond_args) {
            self.rebind(n, *arg, *ty);
        }
        let c = self.eval(cond)?;
        let cb = self.cast_bool(c);
        let forwarded: Vec<Value> = merged
            .iter()
            .map(|(n, _, _)| match self.lookup(n) {
                Some(Slot::Scalar(v, _)) => v,
                _ => unreachable!("merged variables stay scalars"),
            })
            .collect();
        self.pop_scope();
        let mut cond_operands = vec![cb];
        cond_operands.extend(forwarded);
        self.b
            .emit(OpKind::Condition, cond_operands, vec![], vec![]);
        self.b.end_region();

        let body_region = self.b.begin_region();
        let body_args: Vec<Value> = tys
            .iter()
            .map(|ty| self.b.func_mut().add_region_arg(body_region, ty.clone()))
            .collect();
        self.push_scope();
        for ((n, _, ty), arg) in merged.iter().zip(&body_args) {
            self.rebind(n, *arg, *ty);
        }
        self.lower_stmts(std::slice::from_ref(body))?;
        let finals: Vec<Value> = merged
            .iter()
            .map(|(n, _, _)| match self.lookup(n) {
                Some(Slot::Scalar(v, _)) => v,
                _ => unreachable!("merged variables stay scalars"),
            })
            .collect();
        self.pop_scope();
        self.b.emit(OpKind::Yield, finals, vec![], vec![]);
        self.b.end_region();

        let op = self
            .b
            .emit(OpKind::While, inits, tys, vec![cond_region, body_region]);
        let results = self.b.func().op(op).results.clone();
        for ((n, _, ty), v) in merged.iter().zip(results) {
            self.rebind(n, v, *ty);
        }
        Ok(())
    }

    /// Lowers a `__device__` function body inline; returns the return value
    /// (as a value of `ret_ty`) or `None` for void functions.
    fn lower_device_body(
        &mut self,
        stmts: &[Stmt],
        ret_ty: Option<ScalarType>,
        line: u32,
    ) -> Result<Option<Value>, FrontendError> {
        for (i, stmt) in stmts.iter().enumerate() {
            match &stmt.kind {
                StmtKind::Return(Some(e)) => {
                    let ty = ret_ty
                        .ok_or_else(|| self.err(stmt.line, "void function returns a value"))?;
                    let tv = self.eval(e)?;
                    return Ok(Some(self.cast_to(tv, ty)));
                }
                StmtKind::Return(None) => return Ok(None),
                StmtKind::If {
                    cond,
                    then,
                    els: None,
                } if returns_value(then) => {
                    // if (c) return e;  rest  ⇒  if c { e } else { rest }
                    let ty = ret_ty
                        .ok_or_else(|| self.err(stmt.line, "void function returns a value"))?;
                    let c = self.eval(cond)?;
                    let cb = self.cast_bool(c);
                    let then_region = self.b.begin_region();
                    self.push_scope();
                    let tv = self
                        .lower_device_body(std::slice::from_ref(then.as_ref()), ret_ty, stmt.line)?
                        .ok_or_else(|| self.err(stmt.line, "missing return value"))?;
                    self.pop_scope();
                    self.b.emit(OpKind::Yield, vec![tv], vec![], vec![]);
                    self.b.end_region();
                    let else_region = self.b.begin_region();
                    self.push_scope();
                    let ev = self
                        .lower_device_body(&stmts[i + 1..], ret_ty, stmt.line)?
                        .ok_or_else(|| {
                            self.err(stmt.line, "function does not return on all paths")
                        })?;
                    self.pop_scope();
                    self.b.emit(OpKind::Yield, vec![ev], vec![], vec![]);
                    self.b.end_region();
                    let op = self.b.emit(
                        OpKind::If,
                        vec![cb],
                        vec![Type::Scalar(ty)],
                        vec![then_region, else_region],
                    );
                    return Ok(Some(self.b.func().op(op).results[0]));
                }
                _ => self.lower_stmt(stmt)?,
            }
        }
        if ret_ty.is_none() {
            Ok(None)
        } else {
            Err(self.err(line, "function does not return on all paths"))
        }
    }
}

fn is_bare_return(s: &Stmt) -> bool {
    match &s.kind {
        StmtKind::Return(None) => true,
        StmtKind::Block(b) => b.len() == 1 && is_bare_return(&b[0]),
        _ => false,
    }
}

fn returns_value(s: &Stmt) -> bool {
    match &s.kind {
        StmtKind::Return(Some(_)) => true,
        StmtKind::Block(b) => b.len() == 1 && returns_value(&b[0]),
        _ => false,
    }
}

fn collect_idents(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Ident(n) => {
            if !out.contains(n) {
                out.push(n.clone());
            }
        }
        ExprKind::Unary(_, a) => collect_idents(a, out),
        ExprKind::Binary(_, a, b) => {
            collect_idents(a, out);
            collect_idents(b, out);
        }
        ExprKind::Assign { lhs, rhs, .. } => {
            collect_idents(lhs, out);
            collect_idents(rhs, out);
        }
        ExprKind::IncDec { lhs, .. } => collect_idents(lhs, out),
        ExprKind::Call { args, .. } => {
            for a in args {
                collect_idents(a, out);
            }
        }
        ExprKind::Index { base, index } => {
            collect_idents(base, out);
            collect_idents(index, out);
        }
        ExprKind::Cast { expr, .. } => collect_idents(expr, out),
        ExprKind::Cond { cond, then, els } => {
            collect_idents(cond, out);
            collect_idents(then, out);
            collect_idents(els, out);
        }
        ExprKind::IntLit(_) | ExprKind::FloatLit(..) | ExprKind::Builtin(..) => {}
    }
}

/// Lowers one kernel definition to an IR function.
///
/// # Errors
///
/// Returns a [`FrontendError`] for constructs outside the supported subset
/// or type errors.
pub fn lower_kernel(
    unit: &TranslationUnit,
    fdef: &FuncDef,
    spec: &KernelSpec,
) -> Result<Function, FrontendError> {
    let mut func = Function::new(&fdef.name);
    let gx = func.add_param(Type::index());
    let gy = func.add_param(Type::index());
    let gz = func.add_param(Type::index());
    let mut param_slots: Vec<(String, Slot)> = Vec::new();
    for p in &fdef.params {
        match &p.ty {
            CType::Ptr(inner) => {
                let elem = scalar_of(inner, fdef.line)?;
                let v = func.add_param(Type::MemRef(MemRefType::new_1d_dynamic(
                    elem,
                    MemSpace::Global,
                )));
                param_slots.push((p.name.clone(), Slot::Mem(v)));
            }
            other => {
                let sty = scalar_of(other, fdef.line)?;
                let v = func.add_param(Type::Scalar(sty));
                param_slots.push((p.name.clone(), Slot::Scalar(v, sty)));
            }
        }
    }

    let mut b = FuncBuilder::new(&mut func);
    let block_dim_consts: Vec<Value> = spec.block_dims.iter().map(|&d| b.const_index(d)).collect();

    // Block-parallel region.
    let block_region = b.begin_region();
    let bids: Vec<Value> = (0..3)
        .map(|_| b.func_mut().add_region_arg(block_region, Type::index()))
        .collect();

    let mut lw = Lowerer {
        b,
        unit,
        scopes: vec![HashMap::new()],
        tids: Vec::new(),
        bids: bids.clone(),
        grid: vec![gx, gy, gz],
        block_dims: spec.block_dims,
        inline_stack: Vec::new(),
    };
    for (n, s) in &param_slots {
        lw.bind(n, *s);
    }

    // Hoist top-level __shared__ declarations into the block region.
    let mut body_rest: Vec<&Stmt> = Vec::new();
    for stmt in &fdef.body {
        if let StmtKind::Decl {
            name,
            ty,
            dims,
            shared: true,
            init,
        } = &stmt.kind
        {
            if init.is_some() {
                return Err(FrontendError {
                    message: "__shared__ initializers are not supported".into(),
                    line: stmt.line,
                });
            }
            if dims.is_empty() {
                return Err(FrontendError {
                    message: "__shared__ scalars are not supported; use an array".into(),
                    line: stmt.line,
                });
            }
            let sty = scalar_of(ty, stmt.line)?;
            let shape: Vec<i64> = dims.iter().map(|&d| d as i64).collect();
            let mem = lw.b.alloc_static(sty, &shape, MemSpace::Shared);
            lw.bind(name, Slot::Mem(mem));
        } else {
            body_rest.push(stmt);
        }
    }

    // Thread-parallel region.
    let thread_region = lw.b.begin_region();
    let tids: Vec<Value> = (0..3)
        .map(|_| lw.b.func_mut().add_region_arg(thread_region, Type::index()))
        .collect();
    lw.tids = tids;
    lw.push_scope();
    let owned_rest: Vec<Stmt> = body_rest.into_iter().cloned().collect();
    lw.lower_stmts(&owned_rest)?;
    lw.pop_scope();
    lw.b.emit(OpKind::Yield, vec![], vec![], vec![]);
    lw.b.end_region();
    lw.b.emit(
        OpKind::Parallel {
            level: ParLevel::Thread,
        },
        block_dim_consts,
        vec![],
        vec![thread_region],
    );
    lw.b.emit(OpKind::Yield, vec![], vec![], vec![]);
    lw.b.end_region();
    lw.b.emit(
        OpKind::Parallel {
            level: ParLevel::Block,
        },
        vec![gx, gy, gz],
        vec![],
        vec![block_region],
    );
    lw.b.ret(&[]);
    Ok(func)
}

/// Lowers a translation unit: each kernel named in `specs` becomes one IR
/// function in the returned module.
///
/// # Errors
///
/// Returns a [`FrontendError`] if a spec names a missing kernel or lowering
/// fails.
pub fn lower_translation_unit(
    unit: &TranslationUnit,
    specs: &[KernelSpec],
) -> Result<Module, FrontendError> {
    let mut module = Module::new();
    for spec in specs {
        let fdef = unit
            .func(&spec.name)
            .filter(|f| f.kind == FuncKind::Global)
            .ok_or_else(|| FrontendError {
                message: format!("no __global__ kernel named {}", spec.name),
                line: 0,
            })?;
        module.add_function(lower_kernel(unit, fdef, spec)?);
    }
    Ok(module)
}
