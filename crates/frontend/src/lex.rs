//! Lexer and lightweight preprocessor for the CUDA C subset.
//!
//! The preprocessor handles exactly what the Rodinia kernels need: comment
//! stripping, `#include` elision, and object-like numeric `#define`s
//! (e.g. `#define BLOCK_SIZE 16`). Function-like macros are rejected.

use std::collections::HashMap;
use std::fmt;

/// Error produced while lexing or preprocessing CUDA source.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// A lexed token with its source line (for diagnostics).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// Token kinds of the CUDA C subset.
#[derive(Clone, Debug, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (suffixes `u`/`l` are consumed and ignored).
    IntLit(i64),
    /// Floating point literal; the flag is `true` for `f`-suffixed literals.
    FloatLit(f64, bool),
    /// Punctuation or operator, e.g. `"+="`, `"("`, `"&&"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl TokKind {
    /// Returns the identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

const PUNCTS: &[&str] = &[
    // Three-char first, then two-char, then one-char: longest match wins.
    "<<<", ">>>", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "<<", ">>", "++", "--", "->", "(", ")", "[", "]", "{", "}", ",", ";", ":",
    "?", "=", "+", "-", "*", "/", "%", "<", ">", "!", "&", "|", "^", "~", ".",
];

/// Strips `//…` and `/*…*/` comments, preserving line structure.
fn strip_comments(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                if bytes[i] == b'\n' {
                    out.push('\n');
                }
                i += 1;
            }
            i = (i + 2).min(bytes.len());
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Applies the mini-preprocessor: collects numeric `#define`s, drops other
/// directives, and substitutes macro names in the remaining text lines.
fn preprocess(src: &str) -> Result<(String, HashMap<String, String>), LexError> {
    let mut defines: HashMap<String, String> = HashMap::new();
    let mut out = String::with_capacity(src.len());
    for (lineno, line) in src.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(def) = rest.strip_prefix("define") {
                let mut parts = def.trim().splitn(2, char::is_whitespace);
                let name = parts.next().unwrap_or("").trim();
                let value = parts.next().unwrap_or("").trim();
                if name.is_empty() {
                    return Err(LexError {
                        message: "malformed #define".into(),
                        line: lineno as u32 + 1,
                    });
                }
                if name.contains('(') {
                    return Err(LexError {
                        message: format!("function-like macro {name} is not supported"),
                        line: lineno as u32 + 1,
                    });
                }
                defines.insert(name.to_string(), value.to_string());
            }
            // #include, #ifdef, #pragma, … are dropped; kernels in this
            // subset must be self-contained.
            out.push('\n');
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    Ok((out, defines))
}

/// Lexes preprocessed CUDA source into tokens.
///
/// # Errors
///
/// Returns a [`LexError`] for malformed literals, unsupported characters, or
/// function-like macros.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let stripped = strip_comments(src);
    let (text, defines) = preprocess(&stripped)?;
    let mut toks = lex_raw(&text)?;
    // Substitute object-like macros (possibly recursively, bounded).
    for _round in 0..8 {
        let mut changed = false;
        let mut result = Vec::with_capacity(toks.len());
        for tok in toks {
            match &tok.kind {
                TokKind::Ident(name) if defines.contains_key(name) => {
                    let expansion = lex_raw(&defines[name]).map_err(|mut e| {
                        e.message = format!("in expansion of macro {name}: {}", e.message);
                        e.line = tok.line;
                        e
                    })?;
                    for mut t in expansion {
                        if t.kind == TokKind::Eof {
                            continue;
                        }
                        t.line = tok.line;
                        result.push(t);
                        changed = true;
                    }
                }
                _ => result.push(tok),
            }
        }
        toks = result;
        if !changed {
            break;
        }
    }
    Ok(toks)
}

fn lex_raw(text: &str) -> Result<Vec<Token>, LexError> {
    let bytes = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Ident(text[start..i].to_string()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() || (c == '.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()))
        {
            let start = i;
            let mut is_float = c == '.';
            if c == '0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                i += 2;
                while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                    i += 1;
                }
                let v = i64::from_str_radix(&text[start + 2..i], 16).map_err(|e| LexError {
                    message: format!("bad hex literal: {e}"),
                    line,
                })?;
                // Consume integer suffixes.
                while matches!(
                    bytes.get(i),
                    Some(b'u') | Some(b'U') | Some(b'l') | Some(b'L')
                ) {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::IntLit(v),
                    line,
                });
                continue;
            }
            while i < bytes.len() {
                let b = bytes[i] as char;
                if b.is_ascii_digit() {
                    i += 1;
                } else if b == '.' {
                    is_float = true;
                    i += 1;
                } else if (b == 'e' || b == 'E')
                    && bytes
                        .get(i + 1)
                        .is_some_and(|&n| n.is_ascii_digit() || n == b'-' || n == b'+')
                {
                    is_float = true;
                    i += 2;
                } else {
                    break;
                }
            }
            let body = &text[start..i];
            let mut f32_suffix = false;
            while let Some(&s) = bytes.get(i) {
                match s {
                    b'f' | b'F' => {
                        f32_suffix = true;
                        is_float = true;
                        i += 1;
                    }
                    b'u' | b'U' | b'l' | b'L' => {
                        i += 1;
                    }
                    _ => break,
                }
            }
            if is_float {
                let v: f64 = body.parse().map_err(|e| LexError {
                    message: format!("bad float literal {body}: {e}"),
                    line,
                })?;
                toks.push(Token {
                    kind: TokKind::FloatLit(v, f32_suffix),
                    line,
                });
            } else {
                let v: i64 = body.parse().map_err(|e| LexError {
                    message: format!("bad int literal {body}: {e}"),
                    line,
                })?;
                toks.push(Token {
                    kind: TokKind::IntLit(v),
                    line,
                });
            }
            continue;
        }
        for p in PUNCTS {
            if text[i..].starts_with(p) {
                toks.push(Token {
                    kind: TokKind::Punct(p),
                    line,
                });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(LexError {
            message: format!("unexpected character {c:?}"),
            line,
        });
    }
    toks.push(Token {
        kind: TokKind::Eof,
        line,
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_identifiers_and_puncts() {
        let k = kinds("a += b[2];");
        assert_eq!(
            k,
            vec![
                TokKind::Ident("a".into()),
                TokKind::Punct("+="),
                TokKind::Ident("b".into()),
                TokKind::Punct("["),
                TokKind::IntLit(2),
                TokKind::Punct("]"),
                TokKind::Punct(";"),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_float_suffixes() {
        assert_eq!(kinds("1.5f")[0], TokKind::FloatLit(1.5, true));
        assert_eq!(kinds("1.5")[0], TokKind::FloatLit(1.5, false));
        assert_eq!(kinds("2e-3f")[0], TokKind::FloatLit(2e-3, true));
        assert_eq!(kinds("3u")[0], TokKind::IntLit(3));
        assert_eq!(kinds("0x10")[0], TokKind::IntLit(16));
    }

    #[test]
    fn strips_comments() {
        let k = kinds("a /* mid */ b // tail\nc");
        assert_eq!(
            k,
            vec![
                TokKind::Ident("a".into()),
                TokKind::Ident("b".into()),
                TokKind::Ident("c".into()),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn expands_numeric_defines() {
        let k = kinds("#define BLOCK_SIZE 16\nint x = BLOCK_SIZE * BLOCK_SIZE;");
        assert!(k.contains(&TokKind::IntLit(16)));
        assert!(!k.iter().any(|t| t.ident() == Some("BLOCK_SIZE")));
    }

    #[test]
    fn expands_defines_recursively() {
        let k = kinds("#define A 4\n#define B A\nB");
        assert_eq!(k[0], TokKind::IntLit(4));
    }

    #[test]
    fn ignores_includes() {
        let k = kinds("#include <cuda.h>\nx");
        assert_eq!(k[0], TokKind::Ident("x".into()));
    }

    #[test]
    fn rejects_function_like_macros() {
        let err = lex("#define SQ(x) ((x)*(x))\n").unwrap_err();
        assert!(err.message.contains("function-like"));
    }

    #[test]
    fn tracks_lines() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn lexes_shift_operators() {
        let k = kinds("a << 2 >> 1");
        assert!(k.contains(&TokKind::Punct("<<")));
        assert!(k.contains(&TokKind::Punct(">>")));
    }
}
