//! Recursive-descent parser for the CUDA C subset.

use std::fmt;

use crate::ast::*;
use crate::lex::{lex, LexError, TokKind, Token};

/// Error produced while parsing CUDA source.
#[derive(Clone, Debug, PartialEq)]
pub struct CParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for CParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CParseError {}

impl From<LexError> for CParseError {
    fn from(e: LexError) -> CParseError {
        CParseError {
            message: e.message,
            line: e.line,
        }
    }
}

const TYPE_KEYWORDS: &[&str] = &[
    "void", "bool", "int", "long", "unsigned", "float", "double", "size_t",
];

struct P {
    toks: Vec<Token>,
    pos: usize,
}

impl P {
    fn line(&self) -> u32 {
        self.toks[self.pos.min(self.toks.len() - 1)].line
    }

    fn err(&self, message: impl Into<String>) -> CParseError {
        CParseError {
            message: message.into(),
            line: self.line(),
        }
    }

    fn peek(&self) -> &TokKind {
        &self.toks[self.pos.min(self.toks.len() - 1)].kind
    }

    fn peek2(&self) -> &TokKind {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn bump(&mut self) -> TokKind {
        let k = self.toks[self.pos.min(self.toks.len() - 1)].kind.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        k
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{p}', found {:?}", self.peek())))
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), TokKind::Ident(w) if w == word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CParseError> {
        match self.bump() {
            TokKind::Ident(w) => Ok(w),
            t => Err(self.err(format!("expected identifier, found {t:?}"))),
        }
    }

    fn at_type(&self) -> bool {
        matches!(self.peek(), TokKind::Ident(w) if TYPE_KEYWORDS.contains(&w.as_str()))
            || matches!(self.peek(), TokKind::Ident(w) if w == "const")
    }

    fn parse_type(&mut self) -> Result<CType, CParseError> {
        while self.eat_ident("const") {}
        let base = match self.bump() {
            TokKind::Ident(w) => match w.as_str() {
                "void" => CType::Void,
                "bool" => CType::Bool,
                "int" => CType::Int,
                "long" => {
                    self.eat_ident("long");
                    self.eat_ident("int");
                    CType::Long
                }
                "size_t" => CType::Long,
                "unsigned" => {
                    // `unsigned`, `unsigned int`, `unsigned long` — all
                    // modelled as their signed counterparts (documented
                    // narrowing of the subset).
                    if self.eat_ident("long") {
                        CType::Long
                    } else {
                        self.eat_ident("int");
                        CType::Int
                    }
                }
                "float" => CType::Float,
                "double" => CType::Double,
                other => return Err(self.err(format!("unknown type {other}"))),
            },
            t => return Err(self.err(format!("expected type, found {t:?}"))),
        };
        let mut ty = base;
        while self.eat_punct("*") {
            while self.eat_ident("const")
                || self.eat_ident("__restrict__")
                || self.eat_ident("restrict")
            {}
            ty = CType::Ptr(Box::new(ty));
        }
        Ok(ty)
    }

    // ---- expressions -----------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, CParseError> {
        self.parse_assign()
    }

    fn parse_assign(&mut self) -> Result<Expr, CParseError> {
        let line = self.line();
        let lhs = self.parse_cond()?;
        let op = match self.peek() {
            TokKind::Punct("=") => None,
            TokKind::Punct("+=") => Some(BinopC::Add),
            TokKind::Punct("-=") => Some(BinopC::Sub),
            TokKind::Punct("*=") => Some(BinopC::Mul),
            TokKind::Punct("/=") => Some(BinopC::Div),
            TokKind::Punct("%=") => Some(BinopC::Rem),
            TokKind::Punct("&=") => Some(BinopC::BitAnd),
            TokKind::Punct("|=") => Some(BinopC::BitOr),
            TokKind::Punct("^=") => Some(BinopC::BitXor),
            TokKind::Punct("<<=") => Some(BinopC::Shl),
            TokKind::Punct(">>=") => Some(BinopC::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assign()?;
        Ok(Expr {
            kind: ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            line,
        })
    }

    fn parse_cond(&mut self) -> Result<Expr, CParseError> {
        let line = self.line();
        let cond = self.parse_binary(0)?;
        if self.eat_punct("?") {
            let then = self.parse_expr()?;
            self.expect_punct(":")?;
            let els = self.parse_cond()?;
            Ok(Expr {
                kind: ExprKind::Cond {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                },
                line,
            })
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing over binary operators; `min_prec` is the minimum
    /// binding power to continue.
    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, CParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                TokKind::Punct("||") => (BinopC::LogOr, 1),
                TokKind::Punct("&&") => (BinopC::LogAnd, 2),
                TokKind::Punct("|") => (BinopC::BitOr, 3),
                TokKind::Punct("^") => (BinopC::BitXor, 4),
                TokKind::Punct("&") => (BinopC::BitAnd, 5),
                TokKind::Punct("==") => (BinopC::EqEq, 6),
                TokKind::Punct("!=") => (BinopC::Ne, 6),
                TokKind::Punct("<") => (BinopC::Lt, 7),
                TokKind::Punct("<=") => (BinopC::Le, 7),
                TokKind::Punct(">") => (BinopC::Gt, 7),
                TokKind::Punct(">=") => (BinopC::Ge, 7),
                TokKind::Punct("<<") => (BinopC::Shl, 8),
                TokKind::Punct(">>") => (BinopC::Shr, 8),
                TokKind::Punct("+") => (BinopC::Add, 9),
                TokKind::Punct("-") => (BinopC::Sub, 9),
                TokKind::Punct("*") => (BinopC::Mul, 10),
                TokKind::Punct("/") => (BinopC::Div, 10),
                TokKind::Punct("%") => (BinopC::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, CParseError> {
        let line = self.line();
        match self.peek() {
            TokKind::Punct("-") => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary(UnopC::Neg, Box::new(e)),
                    line,
                })
            }
            TokKind::Punct("+") => {
                self.bump();
                self.parse_unary()
            }
            TokKind::Punct("!") => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary(UnopC::Not, Box::new(e)),
                    line,
                })
            }
            TokKind::Punct("~") => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr {
                    kind: ExprKind::Unary(UnopC::BitNot, Box::new(e)),
                    line,
                })
            }
            TokKind::Punct("++") | TokKind::Punct("--") => {
                let inc = matches!(self.peek(), TokKind::Punct("++"));
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr {
                    kind: ExprKind::IncDec {
                        inc,
                        lhs: Box::new(e),
                    },
                    line,
                })
            }
            TokKind::Punct("(") => {
                // Disambiguate cast from parenthesized expression.
                if matches!(self.peek2(), TokKind::Ident(w) if TYPE_KEYWORDS.contains(&w.as_str()))
                {
                    self.bump(); // (
                    let ty = self.parse_type()?;
                    self.expect_punct(")")?;
                    let e = self.parse_unary()?;
                    Ok(Expr {
                        kind: ExprKind::Cast {
                            ty,
                            expr: Box::new(e),
                        },
                        line,
                    })
                } else {
                    self.parse_postfix()
                }
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, CParseError> {
        let line = self.line();
        let mut e = self.parse_primary()?;
        loop {
            if self.eat_punct("[") {
                let idx = self.parse_expr()?;
                self.expect_punct("]")?;
                e = Expr {
                    kind: ExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(idx),
                    },
                    line,
                };
            } else if matches!(self.peek(), TokKind::Punct("++") | TokKind::Punct("--")) {
                let inc = matches!(self.peek(), TokKind::Punct("++"));
                self.bump();
                e = Expr {
                    kind: ExprKind::IncDec {
                        inc,
                        lhs: Box::new(e),
                    },
                    line,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, CParseError> {
        let line = self.line();
        match self.bump() {
            TokKind::IntLit(v) => Ok(Expr {
                kind: ExprKind::IntLit(v),
                line,
            }),
            TokKind::FloatLit(v, f32_suffix) => Ok(Expr {
                kind: ExprKind::FloatLit(v, f32_suffix),
                line,
            }),
            TokKind::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokKind::Ident(name) => {
                let builtin = match name.as_str() {
                    "threadIdx" => Some(BuiltinVar::ThreadIdx),
                    "blockIdx" => Some(BuiltinVar::BlockIdx),
                    "blockDim" => Some(BuiltinVar::BlockDim),
                    "gridDim" => Some(BuiltinVar::GridDim),
                    _ => None,
                };
                if let Some(b) = builtin {
                    self.expect_punct(".")?;
                    let member = self.expect_ident()?;
                    let dim = match member.as_str() {
                        "x" => 0,
                        "y" => 1,
                        "z" => 2,
                        other => return Err(self.err(format!("unknown member .{other}"))),
                    };
                    return Ok(Expr {
                        kind: ExprKind::Builtin(b, dim),
                        line,
                    });
                }
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    return Ok(Expr {
                        kind: ExprKind::Call { name, args },
                        line,
                    });
                }
                Ok(Expr {
                    kind: ExprKind::Ident(name),
                    line,
                })
            }
            t => Err(self.err(format!("expected expression, found {t:?}"))),
        }
    }

    // ---- statements --------------------------------------------------------

    fn parse_block(&mut self) -> Result<Vec<Stmt>, CParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), TokKind::Eof) {
                return Err(self.err("unterminated block"));
            }
            self.parse_stmt_into(&mut stmts)?;
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CParseError> {
        let mut v = Vec::new();
        self.parse_stmt_into(&mut v)?;
        if v.len() == 1 {
            Ok(v.pop().expect("checked length"))
        } else {
            let line = v.first().map_or(1, |s| s.line);
            Ok(Stmt {
                kind: StmtKind::Block(v),
                line,
            })
        }
    }

    fn parse_stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), CParseError> {
        let line = self.line();
        if matches!(self.peek(), TokKind::Punct("{")) {
            let b = self.parse_block()?;
            out.push(Stmt {
                kind: StmtKind::Block(b),
                line,
            });
            return Ok(());
        }
        if self.eat_punct(";") {
            return Ok(());
        }
        if self.eat_ident("if") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let then = Box::new(self.parse_stmt()?);
            let els = if self.eat_ident("else") {
                Some(Box::new(self.parse_stmt()?))
            } else {
                None
            };
            out.push(Stmt {
                kind: StmtKind::If { cond, then, els },
                line,
            });
            return Ok(());
        }
        if self.eat_ident("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else {
                let mut init_stmts = Vec::new();
                self.parse_simple_stmt_into(&mut init_stmts)?;
                self.expect_punct(";")?;
                if init_stmts.len() != 1 {
                    return Err(self.err("for-init must be a single declaration or expression"));
                }
                Some(Box::new(init_stmts.pop().expect("checked length")))
            };
            let cond = if matches!(self.peek(), TokKind::Punct(";")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(";")?;
            let inc = if matches!(self.peek(), TokKind::Punct(")")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(")")?;
            let body = Box::new(self.parse_stmt()?);
            out.push(Stmt {
                kind: StmtKind::For {
                    init,
                    cond,
                    inc,
                    body,
                },
                line,
            });
            return Ok(());
        }
        if self.eat_ident("while") {
            self.expect_punct("(")?;
            let cond = self.parse_expr()?;
            self.expect_punct(")")?;
            let body = Box::new(self.parse_stmt()?);
            out.push(Stmt {
                kind: StmtKind::While { cond, body },
                line,
            });
            return Ok(());
        }
        if self.eat_ident("return") {
            let e = if matches!(self.peek(), TokKind::Punct(";")) {
                None
            } else {
                Some(self.parse_expr()?)
            };
            self.expect_punct(";")?;
            out.push(Stmt {
                kind: StmtKind::Return(e),
                line,
            });
            return Ok(());
        }
        if self.eat_ident("break") || self.eat_ident("continue") {
            return Err(self.err("break/continue are not supported by this subset"));
        }
        self.parse_simple_stmt_into(out)?;
        self.expect_punct(";")?;
        Ok(())
    }

    /// Parses a declaration or expression statement *without* the trailing
    /// semicolon (shared between statement and for-init positions).
    fn parse_simple_stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), CParseError> {
        let line = self.line();
        let shared = self.eat_ident("__shared__");
        if shared || self.at_type() {
            let ty = self.parse_type()?;
            loop {
                let name = self.expect_ident()?;
                let mut dims = Vec::new();
                while self.eat_punct("[") {
                    match self.bump() {
                        TokKind::IntLit(v) if v > 0 => dims.push(v as usize),
                        t => {
                            return Err(self.err(format!(
                                "array dimension must be a positive constant, found {t:?}"
                            )))
                        }
                    }
                    self.expect_punct("]")?;
                }
                let init = if self.eat_punct("=") {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                out.push(Stmt {
                    kind: StmtKind::Decl {
                        name,
                        ty: ty.clone(),
                        dims,
                        shared,
                        init,
                    },
                    line,
                });
                if !self.eat_punct(",") {
                    break;
                }
            }
            return Ok(());
        }
        let e = self.parse_expr()?;
        if let ExprKind::Call { name, args } = &e.kind {
            if name == "__syncthreads" && args.is_empty() {
                out.push(Stmt {
                    kind: StmtKind::Sync,
                    line,
                });
                return Ok(());
            }
        }
        out.push(Stmt {
            kind: StmtKind::Expr(e),
            line,
        });
        Ok(())
    }

    // ---- top level ---------------------------------------------------------

    fn parse_unit(&mut self) -> Result<TranslationUnit, CParseError> {
        let mut unit = TranslationUnit::default();
        loop {
            if matches!(self.peek(), TokKind::Eof) {
                return Ok(unit);
            }
            let line = self.line();
            let mut kind = None;
            loop {
                if self.eat_ident("__global__") {
                    kind = Some(FuncKind::Global);
                } else if self.eat_ident("__device__") {
                    kind = Some(FuncKind::Device);
                } else if self.eat_ident("static")
                    || self.eat_ident("inline")
                    || self.eat_ident("__forceinline__")
                {
                    // qualifier noise
                } else {
                    break;
                }
            }
            let kind =
                kind.ok_or_else(|| self.err("expected __global__ or __device__ function"))?;
            let ret = self.parse_type()?;
            if kind == FuncKind::Global && ret != CType::Void {
                return Err(self.err("__global__ functions must return void"));
            }
            let name = self.expect_ident()?;
            self.expect_punct("(")?;
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    let ty = self.parse_type()?;
                    let pname = self.expect_ident()?;
                    params.push(ParamDecl { name: pname, ty });
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            let body = self.parse_block()?;
            unit.funcs.push(FuncDef {
                kind,
                name,
                ret,
                params,
                body,
                line,
            });
        }
    }
}

/// Parses a CUDA C translation unit containing `__global__` and
/// `__device__` function definitions.
///
/// # Errors
///
/// Returns a [`CParseError`] on the first lexical or syntactic problem.
///
/// # Example
///
/// ```
/// let unit = respec_frontend::parse_cuda(r#"
///     __global__ void scale(float* a, float s, int n) {
///         int i = blockIdx.x * blockDim.x + threadIdx.x;
///         if (i < n) a[i] = a[i] * s;
///     }
/// "#)?;
/// assert_eq!(unit.kernels().count(), 1);
/// # Ok::<(), respec_frontend::CParseError>(())
/// ```
pub fn parse_cuda(src: &str) -> Result<TranslationUnit, CParseError> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    p.parse_unit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_kernel() {
        let unit = parse_cuda(
            "__global__ void k(float* a, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { a[i] = a[i] + 1.0f; }
            }",
        )
        .unwrap();
        assert_eq!(unit.funcs.len(), 1);
        let f = &unit.funcs[0];
        assert_eq!(f.kind, FuncKind::Global);
        assert_eq!(f.params.len(), 2);
        assert!(f.params[0].ty.is_ptr());
    }

    #[test]
    fn parses_shared_and_sync() {
        let unit = parse_cuda(
            "#define BS 16
            __global__ void k(float* a) {
                __shared__ float tile[BS][BS];
                tile[threadIdx.y][threadIdx.x] = a[threadIdx.x];
                __syncthreads();
                a[threadIdx.x] = tile[threadIdx.x][threadIdx.y];
            }",
        )
        .unwrap();
        let body = &unit.funcs[0].body;
        assert!(matches!(
            &body[0].kind,
            StmtKind::Decl { shared: true, dims, .. } if dims == &vec![16, 16]
        ));
        assert!(body.iter().any(|s| matches!(s.kind, StmtKind::Sync)));
    }

    #[test]
    fn parses_for_loops() {
        let unit = parse_cuda(
            "__global__ void k(float* a, int n) {
                float acc = 0.0f;
                for (int i = 0; i < n; i++) acc += a[i];
                a[0] = acc;
            }",
        )
        .unwrap();
        assert!(unit.funcs[0]
            .body
            .iter()
            .any(|s| matches!(s.kind, StmtKind::For { .. })));
    }

    #[test]
    fn parses_device_function() {
        let unit = parse_cuda(
            "__device__ float sq(float x) { return x * x; }
             __global__ void k(float* a) { a[0] = sq(a[0]); }",
        )
        .unwrap();
        assert_eq!(unit.funcs.len(), 2);
        assert_eq!(unit.funcs[0].kind, FuncKind::Device);
    }

    #[test]
    fn parses_ternary_and_logic() {
        let unit = parse_cuda(
            "__global__ void k(float* a, int n) {
                int i = threadIdx.x;
                float v = (i > 0 && i < n) ? a[i] : 0.0f;
                a[i] = v;
            }",
        )
        .unwrap();
        assert_eq!(unit.funcs.len(), 1);
    }

    #[test]
    fn rejects_break() {
        let err = parse_cuda("__global__ void k(float* a) { while (1) { break; } }").unwrap_err();
        assert!(err.message.contains("break"));
    }

    #[test]
    fn rejects_non_void_kernel() {
        let err = parse_cuda("__global__ int k() { return 1; }").unwrap_err();
        assert!(err.message.contains("void"));
    }

    #[test]
    fn parses_casts() {
        let unit = parse_cuda(
            "__global__ void k(float* a, int n) {
                a[0] = (float)n / 2.0f;
            }",
        )
        .unwrap();
        assert_eq!(unit.funcs.len(), 1);
    }

    #[test]
    fn parses_multi_declarator() {
        let unit = parse_cuda(
            "__global__ void k(float* a) {
                int i = 0, j = 1;
                a[i] = a[j];
            }",
        )
        .unwrap();
        let decls = unit.funcs[0]
            .body
            .iter()
            .filter(|s| matches!(s.kind, StmtKind::Decl { .. }))
            .count();
        assert_eq!(decls, 2);
    }

    #[test]
    fn parses_unsigned_as_int() {
        let unit =
            parse_cuda("__global__ void k(unsigned int* a, unsigned n) { a[0] = n; }").unwrap();
        assert_eq!(unit.funcs[0].params[0].ty, CType::Ptr(Box::new(CType::Int)));
        assert_eq!(unit.funcs[0].params[1].ty, CType::Int);
    }
}
