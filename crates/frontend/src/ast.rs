//! Abstract syntax tree for the CUDA C subset.

/// A C scalar or pointer type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CType {
    Void,
    Bool,
    Int,
    Long,
    Float,
    Double,
    /// Pointer to element type (only one level, only to scalars).
    Ptr(Box<CType>),
}

impl CType {
    /// Returns `true` for pointer types.
    pub fn is_ptr(&self) -> bool {
        matches!(self, CType::Ptr(_))
    }
}

/// CUDA builtin index vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuiltinVar {
    ThreadIdx,
    BlockIdx,
    BlockDim,
    GridDim,
}

/// Binary operators (also used for compound assignment).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinopC {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    LogAnd,
    LogOr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnopC {
    Neg,
    Not,
    BitNot,
}

/// An expression with its source line for diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: u32,
}

/// Expression kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    IntLit(i64),
    /// Value plus "has `f` suffix" flag (`true` ⇒ `float`, else `double`).
    FloatLit(f64, bool),
    Ident(String),
    /// `threadIdx.x` and friends; `usize` is the dimension (0=x, 1=y, 2=z).
    Builtin(BuiltinVar, usize),
    Unary(UnopC, Box<Expr>),
    Binary(BinopC, Box<Expr>, Box<Expr>),
    /// `lhs op= rhs`; `op == None` for plain assignment. Value is the
    /// assigned value (C semantics), though we only allow it in statement
    /// position.
    Assign {
        op: Option<BinopC>,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `++x`, `x++`, `--x`, `x--`; statement position only.
    IncDec {
        inc: bool,
        lhs: Box<Expr>,
    },
    Call {
        name: String,
        args: Vec<Expr>,
    },
    /// `base[index]`; chains express multi-dimensional access.
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
    },
    Cast {
        ty: CType,
        expr: Box<Expr>,
    },
    /// `c ? t : e`.
    Cond {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
}

/// A statement with its source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub line: u32,
}

/// Statement kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum StmtKind {
    /// Variable or array declaration. `dims` is non-empty for arrays.
    Decl {
        name: String,
        ty: CType,
        dims: Vec<usize>,
        shared: bool,
        init: Option<Expr>,
    },
    Expr(Expr),
    Block(Vec<Stmt>),
    If {
        cond: Expr,
        then: Box<Stmt>,
        els: Option<Box<Stmt>>,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        inc: Option<Expr>,
        body: Box<Stmt>,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
    },
    Return(Option<Expr>),
    /// `__syncthreads();`
    Sync,
}

/// Function qualifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuncKind {
    /// `__global__`: a kernel entry point.
    Global,
    /// `__device__`: a device helper, inlined at call sites.
    Device,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamDecl {
    pub name: String,
    pub ty: CType,
}

/// A parsed function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FuncDef {
    pub kind: FuncKind,
    pub name: String,
    pub ret: CType,
    pub params: Vec<ParamDecl>,
    pub body: Vec<Stmt>,
    pub line: u32,
}

/// A parsed translation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TranslationUnit {
    pub funcs: Vec<FuncDef>,
}

impl TranslationUnit {
    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Iterates over kernel (`__global__`) definitions.
    pub fn kernels(&self) -> impl Iterator<Item = &FuncDef> {
        self.funcs.iter().filter(|f| f.kind == FuncKind::Global)
    }
}

/// Collects the names of scalar variables assigned anywhere within `stmts`
/// (used to determine loop-carried values during SSA construction).
pub fn assigned_vars(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        assigned_vars_stmt(s, out);
    }
}

fn assigned_vars_stmt(s: &Stmt, out: &mut Vec<String>) {
    match &s.kind {
        StmtKind::Decl { init: Some(e), .. } => assigned_vars_expr(e, out),
        StmtKind::Decl { .. } => {}
        StmtKind::Expr(e) => assigned_vars_expr(e, out),
        StmtKind::Block(b) => assigned_vars(b, out),
        StmtKind::If { cond, then, els } => {
            assigned_vars_expr(cond, out);
            assigned_vars_stmt(then, out);
            if let Some(e) = els {
                assigned_vars_stmt(e, out);
            }
        }
        StmtKind::For {
            init,
            cond,
            inc,
            body,
        } => {
            if let Some(i) = init {
                assigned_vars_stmt(i, out);
            }
            if let Some(c) = cond {
                assigned_vars_expr(c, out);
            }
            if let Some(i) = inc {
                assigned_vars_expr(i, out);
            }
            assigned_vars_stmt(body, out);
        }
        StmtKind::While { cond, body } => {
            assigned_vars_expr(cond, out);
            assigned_vars_stmt(body, out);
        }
        StmtKind::Return(Some(e)) => assigned_vars_expr(e, out),
        StmtKind::Return(None) | StmtKind::Sync => {}
    }
}

fn assigned_vars_expr(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Assign { lhs, rhs, .. } => {
            if let ExprKind::Ident(name) = &lhs.kind {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            } else {
                assigned_vars_expr(lhs, out);
            }
            assigned_vars_expr(rhs, out);
        }
        ExprKind::IncDec { lhs, .. } => {
            if let ExprKind::Ident(name) = &lhs.kind {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        }
        ExprKind::Unary(_, a) => assigned_vars_expr(a, out),
        ExprKind::Binary(_, a, b) => {
            assigned_vars_expr(a, out);
            assigned_vars_expr(b, out);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                assigned_vars_expr(a, out);
            }
        }
        ExprKind::Index { base, index } => {
            assigned_vars_expr(base, out);
            assigned_vars_expr(index, out);
        }
        ExprKind::Cast { expr, .. } => assigned_vars_expr(expr, out),
        ExprKind::Cond { cond, then, els } => {
            assigned_vars_expr(cond, out);
            assigned_vars_expr(then, out);
            assigned_vars_expr(els, out);
        }
        ExprKind::IntLit(_)
        | ExprKind::FloatLit(..)
        | ExprKind::Ident(_)
        | ExprKind::Builtin(..) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(name: &str) -> Expr {
        Expr {
            kind: ExprKind::Ident(name.into()),
            line: 1,
        }
    }

    #[test]
    fn assigned_vars_finds_nested_assignments() {
        let assign = Expr {
            kind: ExprKind::Assign {
                op: None,
                lhs: Box::new(ident("x")),
                rhs: Box::new(ident("y")),
            },
            line: 1,
        };
        let stmt = Stmt {
            kind: StmtKind::If {
                cond: ident("c"),
                then: Box::new(Stmt {
                    kind: StmtKind::Expr(assign),
                    line: 1,
                }),
                els: None,
            },
            line: 1,
        };
        let mut out = Vec::new();
        assigned_vars(&[stmt], &mut out);
        assert_eq!(out, vec!["x".to_string()]);
    }

    #[test]
    fn assigned_vars_ignores_array_stores() {
        let store = Expr {
            kind: ExprKind::Assign {
                op: None,
                lhs: Box::new(Expr {
                    kind: ExprKind::Index {
                        base: Box::new(ident("a")),
                        index: Box::new(ident("i")),
                    },
                    line: 1,
                }),
                rhs: Box::new(ident("y")),
            },
            line: 1,
        };
        let mut out = Vec::new();
        assigned_vars(
            &[Stmt {
                kind: StmtKind::Expr(store),
                line: 1,
            }],
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn incdec_counts_as_assignment() {
        let e = Expr {
            kind: ExprKind::IncDec {
                inc: true,
                lhs: Box::new(ident("i")),
            },
            line: 1,
        };
        let mut out = Vec::new();
        assigned_vars(
            &[Stmt {
                kind: StmtKind::Expr(e),
                line: 1,
            }],
            &mut out,
        );
        assert_eq!(out, vec!["i".to_string()]);
    }
}
